//! User adoption trends (Sec. 4.1, Fig. 2).
//!
//! These analyses consume the long-horizon *summary statistics* of the two
//! vantage points — daily registered-user sets from the MME and daily
//! transacting-user sets from the proxy — exactly the data the paper kept
//! for the full five months while raw logs were only retained for seven
//! weeks.

use wearscope_mobilenet::{MmeSummary, WearableTrafficSummary};
use wearscope_simtime::ObservationWindow;

use crate::stats;

/// Fig. 2(a): the daily number of SIM-enabled wearable users registered with
/// the MME, normalized by the latest value (the paper's confidentiality
/// normalization), plus the fitted growth rate.
#[derive(Clone, Debug)]
pub struct AdoptionTrend {
    /// `(day index, normalized user count)` for every observed day.
    pub daily_normalized: Vec<(u64, f64)>,
    /// Fitted growth per 30 days, as a fraction of the mean level
    /// (the paper reports ≈ 0.015).
    pub monthly_growth_rate: f64,
    /// Relative growth from the first week's mean to the last week's mean
    /// (the paper reports ≈ 0.09 over five months).
    pub total_growth: f64,
}

impl AdoptionTrend {
    /// Computes the trend from the MME summary over `window.summary()`.
    pub fn compute(mme: &MmeSummary, window: &ObservationWindow) -> AdoptionTrend {
        let days: Vec<u64> = window.summary().days().collect();
        let counts: Vec<f64> = days.iter().map(|&d| mme.users_on_day(d) as f64).collect();
        let latest = counts.last().copied().unwrap_or(0.0).max(1.0);
        let daily_normalized = days
            .iter()
            .zip(&counts)
            .map(|(&d, &c)| (d, c / latest))
            .collect();

        let xs: Vec<f64> = days.iter().map(|&d| d as f64).collect();
        let slope = stats::linear_slope(&xs, &counts);
        let mean = counts.iter().sum::<f64>() / counts.len().max(1) as f64;
        let monthly_growth_rate = if mean > 0.0 { slope * 30.0 / mean } else { 0.0 };

        let week_mean = |range: std::ops::Range<usize>| -> f64 {
            let slice = &counts[range.start.min(counts.len())..range.end.min(counts.len())];
            if slice.is_empty() {
                0.0
            } else {
                slice.iter().sum::<f64>() / slice.len() as f64
            }
        };
        let n = counts.len();
        let first = week_mean(0..7.min(n));
        let last = week_mean(n.saturating_sub(7)..n);
        let total_growth = if first > 0.0 {
            (last - first) / first
        } else {
            0.0
        };

        AdoptionTrend {
            daily_normalized,
            monthly_growth_rate,
            total_growth,
        }
    }
}

/// Fig. 2(b): what became of the users seen in the first observation week.
#[derive(Clone, Copy, Debug)]
pub struct CohortRetention {
    /// Users registered at least once in the first week.
    pub first_week_users: usize,
    /// Fraction of those still registered during the *last* week
    /// (the paper reports 77 %).
    pub active_fraction: f64,
    /// Fraction not seen at all in the last four weeks — abandoned devices
    /// (the paper reports 7 %).
    pub gone_fraction: f64,
    /// The remainder: registered somewhere in the last month but not in the
    /// final week (intermittent users).
    pub intermittent_fraction: f64,
}

impl CohortRetention {
    /// Computes first-week cohort retention from the MME summary.
    pub fn compute(mme: &MmeSummary, window: &ObservationWindow) -> CohortRetention {
        let total_days = window.summary().num_days();
        let cohort = mme.users_in_days(0, 7.min(total_days));
        if cohort.is_empty() {
            return CohortRetention {
                first_week_users: 0,
                active_fraction: 0.0,
                gone_fraction: 0.0,
                intermittent_fraction: 0.0,
            };
        }
        let last_week = mme.users_in_days(total_days.saturating_sub(7), total_days);
        let last_month = mme.users_in_days(total_days.saturating_sub(28), total_days);
        let n = cohort.len() as f64;
        let active = cohort.iter().filter(|u| last_week.contains(u)).count() as f64 / n;
        let gone = cohort.iter().filter(|u| !last_month.contains(u)).count() as f64 / n;
        CohortRetention {
            first_week_users: cohort.len(),
            active_fraction: active,
            gone_fraction: gone,
            intermittent_fraction: (1.0 - active - gone).max(0.0),
        }
    }
}

/// Cohort survival curves: for users first registered in week `w`, the
/// fraction still registering `k` weeks later. An extension of Fig. 2(b)'s
/// two-point comparison to the full retention curve (the "detailed analysis
/// of adoption" the paper leaves open).
#[derive(Clone, Debug, Default)]
pub struct RetentionCurves {
    /// `curves[w][k]` = survival of week-`w` adopters after `k` weeks
    /// (element 0 is 1.0 by construction).
    pub curves: Vec<Vec<f64>>,
    /// Cohort sizes per adoption week.
    pub cohort_sizes: Vec<usize>,
    /// Pooled survival over all cohorts, by weeks-since-adoption.
    pub pooled: Vec<f64>,
}

impl RetentionCurves {
    /// Computes weekly survival from the MME summary.
    pub fn compute(mme: &MmeSummary, window: &ObservationWindow) -> RetentionCurves {
        let weeks = window.summary().num_days() / 7;
        if weeks == 0 {
            return RetentionCurves::default();
        }
        // Users registered in each week.
        let by_week: Vec<std::collections::HashSet<wearscope_trace::UserId>> = (0..weeks)
            .map(|w| mme.users_in_days(w * 7, (w + 1) * 7))
            .collect();
        // Adoption week = first week a user appears.
        let mut adopted_in: std::collections::HashMap<wearscope_trace::UserId, u64> =
            std::collections::HashMap::new();
        for (w, users) in by_week.iter().enumerate() {
            for u in users {
                adopted_in.entry(*u).or_insert(w as u64);
            }
        }
        let mut curves = Vec::new();
        let mut cohort_sizes = Vec::new();
        let mut pooled_num: Vec<f64> = Vec::new();
        let mut pooled_den: Vec<f64> = Vec::new();
        for w in 0..weeks {
            let cohort: Vec<wearscope_trace::UserId> = adopted_in
                .iter()
                .filter(|(_, aw)| **aw == w)
                .map(|(u, _)| *u)
                .collect();
            cohort_sizes.push(cohort.len());
            let mut curve = Vec::new();
            for k in 0..(weeks - w) {
                let alive = cohort
                    .iter()
                    .filter(|u| by_week[(w + k) as usize].contains(u))
                    .count();
                let frac = if cohort.is_empty() {
                    0.0
                } else {
                    alive as f64 / cohort.len() as f64
                };
                curve.push(frac);
                let idx = k as usize;
                if pooled_num.len() <= idx {
                    pooled_num.push(0.0);
                    pooled_den.push(0.0);
                }
                pooled_num[idx] += alive as f64;
                pooled_den[idx] += cohort.len() as f64;
            }
            curves.push(curve);
        }
        let pooled = pooled_num
            .iter()
            .zip(&pooled_den)
            .map(|(n, d)| if *d > 0.0 { n / d } else { 0.0 })
            .collect();
        RetentionCurves {
            curves,
            cohort_sizes,
            pooled,
        }
    }
}

/// Sec. 4.1's headline: the share of registered SIM-wearable users that ever
/// generate a network transaction (the paper reports 34 %).
#[derive(Clone, Copy, Debug)]
pub struct DataActiveShare {
    /// Distinct users ever registered.
    pub registered: usize,
    /// Distinct users ever transacting.
    pub data_active: usize,
    /// `data_active / registered`.
    pub share: f64,
}

impl DataActiveShare {
    /// Joins the MME and proxy summaries over the full summary window.
    pub fn compute(
        mme: &MmeSummary,
        traffic: &WearableTrafficSummary,
        window: &ObservationWindow,
    ) -> DataActiveShare {
        let days = window.summary().num_days();
        let registered = mme.users_in_days(0, days);
        let transacting = traffic.users_in_days(0, days);
        let active = registered.intersection(&transacting).count();
        DataActiveShare {
            registered: registered.len(),
            data_active: active,
            share: if registered.is_empty() {
                0.0
            } else {
                active as f64 / registered.len() as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wearscope_devicedb::DeviceDb;
    use wearscope_geo::SectorId;
    use wearscope_mobilenet::Mme;
    use wearscope_simtime::{Calendar, SimTime};
    use wearscope_trace::UserId;

    /// Builds an MME summary where user `u` is registered on the days
    /// listed.
    fn summary_from(registrations: &[(u64, &[u64])]) -> MmeSummary {
        let db = DeviceDb::standard();
        let imei = db.example_imei(db.wearable_tacs()[0], 1).as_u64();
        let mut mme = Mme::new(&db);
        for (user, days) in registrations {
            for &d in *days {
                mme.attach(SimTime::from_days(d), UserId(*user), imei, SectorId(0));
            }
        }
        mme.summary().clone()
    }

    #[test]
    fn linear_growth_is_recovered() {
        // 60-day window where the daily count grows linearly ~1.5%/month.
        let window = ObservationWindow::new(60, 14, Calendar::PAPER);
        let mut regs: Vec<(u64, Vec<u64>)> = Vec::new();
        // 200 base users present every day.
        for u in 0..200u64 {
            regs.push((u, (0..60).collect()));
        }
        // 6 extra users arriving every 10 days (≈ +0.3%/day... small & steady).
        for k in 0..6u64 {
            let arrive = k * 10;
            regs.push((1000 + k, (arrive..60).collect()));
        }
        let reg_refs: Vec<(u64, &[u64])> = regs.iter().map(|(u, d)| (*u, d.as_slice())).collect();
        let trend = AdoptionTrend::compute(&summary_from(&reg_refs), &window);
        assert!(trend.monthly_growth_rate > 0.0);
        assert!(trend.total_growth > 0.0);
        // Normalized series ends at 1.0.
        let (_, last) = *trend.daily_normalized.last().unwrap();
        assert!((last - 1.0).abs() < 1e-9);
        assert_eq!(trend.daily_normalized.len(), 60);
    }

    #[test]
    fn flat_series_has_zero_growth() {
        let window = ObservationWindow::new(30, 7, Calendar::PAPER);
        let regs: Vec<(u64, Vec<u64>)> = (0..50u64).map(|u| (u, (0..30).collect())).collect();
        let reg_refs: Vec<(u64, &[u64])> = regs.iter().map(|(u, d)| (*u, d.as_slice())).collect();
        let trend = AdoptionTrend::compute(&summary_from(&reg_refs), &window);
        assert!(trend.monthly_growth_rate.abs() < 1e-9);
        assert!(trend.total_growth.abs() < 1e-9);
    }

    #[test]
    fn cohort_categories_sum_to_one() {
        let window = ObservationWindow::new(60, 14, Calendar::PAPER);
        // User 1: first week, still active at the end.
        // User 2: first week, churns on day 10 (gone).
        // User 3: first week, intermittent (registers day 40, not last week).
        // User 4: arrives late (not in cohort).
        let summary = summary_from(&[
            (1, &(0..60).collect::<Vec<_>>()),
            (2, &[0, 5, 9]),
            (3, &[2, 40]),
            (4, &[50, 59]),
        ]);
        let r = CohortRetention::compute(&summary, &window);
        assert_eq!(r.first_week_users, 3);
        assert!((r.active_fraction - 1.0 / 3.0).abs() < 1e-9);
        assert!((r.gone_fraction - 1.0 / 3.0).abs() < 1e-9);
        assert!((r.intermittent_fraction - 1.0 / 3.0).abs() < 1e-9);
        let sum = r.active_fraction + r.gone_fraction + r.intermittent_fraction;
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_cohort_is_zeroes() {
        let window = ObservationWindow::new(30, 7, Calendar::PAPER);
        let r = CohortRetention::compute(&MmeSummary::default(), &window);
        assert_eq!(r.first_week_users, 0);
        assert_eq!(r.active_fraction, 0.0);
    }

    #[test]
    fn retention_curves_survival() {
        let window = ObservationWindow::new(28, 7, Calendar::PAPER);
        // User 1: adopts week 0, present every week.
        // User 2: adopts week 0, gone from week 2 on.
        // User 3: adopts week 1, present through week 3.
        let summary = summary_from(&[(1, &[0, 7, 14, 21]), (2, &[1, 8]), (3, &[7, 14, 21])]);
        let r = RetentionCurves::compute(&summary, &window);
        assert_eq!(r.cohort_sizes, vec![2, 1, 0, 0]);
        // Week-0 cohort: k=0 → 1.0; k=1 → 1.0 (both present wk1);
        // k=2 → 0.5; k=3 → 0.5.
        assert_eq!(r.curves[0], vec![1.0, 1.0, 0.5, 0.5]);
        // Week-1 cohort survives fully for its 3 observable weeks.
        assert_eq!(r.curves[1], vec![1.0, 1.0, 1.0]);
        // Pooled at k=0 is 1.0 by construction; k=2 pools 0.5·2 and 1.0·1.
        assert!((r.pooled[0] - 1.0).abs() < 1e-9);
        assert!((r.pooled[2] - 2.0 / 3.0).abs() < 1e-9);
        // Survival curves never exceed 1.
        for c in &r.curves {
            assert!(c.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    #[test]
    fn retention_empty_summary() {
        let window = ObservationWindow::new(14, 7, Calendar::PAPER);
        let r = RetentionCurves::compute(&MmeSummary::default(), &window);
        assert_eq!(r.cohort_sizes, vec![0, 0]);
        assert!(r.pooled.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn data_active_share_intersects_vantage_points() {
        use wearscope_mobilenet::TransparentProxy;
        use wearscope_trace::Scheme;
        let window = ObservationWindow::new(30, 7, Calendar::PAPER);
        let summary = summary_from(&[(1, &[0, 1]), (2, &[0]), (3, &[5])]);
        let mut proxy = TransparentProxy::new();
        // User 1 transacts; user 9 transacts but was never registered
        // (unknown subscriber — excluded by the join).
        proxy.observe(
            SimTime::from_days(1),
            UserId(1),
            1,
            "h",
            Scheme::Https,
            10,
            1,
            true,
            true,
        );
        proxy.observe(
            SimTime::from_days(2),
            UserId(9),
            1,
            "h",
            Scheme::Https,
            10,
            1,
            true,
            true,
        );
        let share = DataActiveShare::compute(&summary, proxy.wearable_summary(), &window);
        assert_eq!(share.registered, 3);
        assert_eq!(share.data_active, 1);
        assert!((share.share - 1.0 / 3.0).abs() < 1e-9);
    }
}
