//! Deterministic text snapshots of the mergeable partial aggregates — the
//! substrate of the streaming engine's checkpoint files.
//!
//! No serialization framework is vendored, so the format is hand-rolled:
//! line-oriented, tab-separated fields, a tag + element counts first, then
//! one line per element. Three rules make snapshots exact and stable:
//!
//! * map/set contents are written in **sorted key order**, so two partials
//!   with equal state produce byte-identical snapshots regardless of hash
//!   iteration order;
//! * `f64` values are written as the **hex of their IEEE-754 bit pattern**
//!   (`{:016x}` of [`f64::to_bits`]), so restore is bit-exact — the
//!   determinism contract of [`crate::merge`] survives a round-trip;
//! * empty collections and absent options are written as a literal `-`,
//!   never as an empty field (TSV cannot distinguish those).
//!
//! Sequence-valued state whose *order* is semantic (e.g. attributed
//! transactions, whose within-key order feeds a stable sort downstream) is
//! written in sequence order, not sorted.

use std::collections::{HashMap, HashSet};
use std::fmt;

use wearscope_appdb::AppId;
use wearscope_simtime::SimTime;
use wearscope_trace::UserId;

use crate::activity::UserActivity;
use crate::compare::UserTraffic;
use crate::merge::{
    ActivityPartial, AppPopularityPartial, HourlyProfilePartial, MobilityPartial, TrafficPartial,
    TransactionStatsPartial,
};
use crate::mobility::UserMobility;
use crate::sessions::AttributedTx;

/// Error from [`Snapshot::restore`]: the snapshot text did not parse.
#[derive(Debug)]
pub struct SnapshotError {
    /// 1-based line number within the snapshot text.
    pub line: u64,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "snapshot line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SnapshotError {}

/// Line cursor over snapshot text, shared by every [`Snapshot::restore`].
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    lines: std::str::Lines<'a>,
    line_no: u64,
}

impl<'a> SnapshotReader<'a> {
    /// Wraps a snapshot text.
    pub fn new(text: &'a str) -> SnapshotReader<'a> {
        SnapshotReader {
            lines: text.lines(),
            line_no: 0,
        }
    }

    /// 1-based number of the last line returned.
    pub fn line_no(&self) -> u64 {
        self.line_no
    }

    /// An error anchored at the current line.
    pub fn err(&self, message: impl Into<String>) -> SnapshotError {
        SnapshotError {
            line: self.line_no,
            message: message.into(),
        }
    }

    /// The next line, or an error at end of input.
    pub fn line(&mut self) -> Result<&'a str, SnapshotError> {
        self.line_no += 1;
        self.lines.next().ok_or(SnapshotError {
            line: self.line_no,
            message: "unexpected end of snapshot".into(),
        })
    }

    /// Reads a line whose first field must equal `tag`; returns the
    /// remaining tab-separated fields.
    pub fn tagged(&mut self, tag: &str) -> Result<Vec<&'a str>, SnapshotError> {
        let line = self.line()?;
        let mut fields = line.split('\t');
        let got = fields.next().unwrap_or("");
        if got != tag {
            return Err(self.err(format!("expected `{tag}` block, found `{got}`")));
        }
        Ok(fields.collect())
    }
}

/// State that serializes to deterministic text and restores bit-identically.
pub trait Snapshot: Sized {
    /// Appends this value's snapshot (one or more `\n`-terminated lines).
    fn snapshot(&self, out: &mut String);

    /// Restores a value previously written by [`Snapshot::snapshot`].
    ///
    /// # Errors
    /// Fails if the text at the cursor is not a snapshot of this type.
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError>;
}

// ---------------------------------------------------------------------------
// Field helpers
// ---------------------------------------------------------------------------

fn push_u64_list(out: &mut String, items: impl Iterator<Item = u64>) {
    let mut any = false;
    for (i, v) in items.enumerate() {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(&v.to_string());
        any = true;
    }
    if !any {
        out.push('-');
    }
}

fn sorted<T: Ord + Copy>(set: &HashSet<T>) -> Vec<T> {
    let mut v: Vec<T> = set.iter().copied().collect();
    v.sort_unstable();
    v
}

fn parse_u64(r: &SnapshotReader<'_>, s: &str) -> Result<u64, SnapshotError> {
    s.parse::<u64>()
        .map_err(|_| r.err(format!("bad integer `{s}`")))
}

fn parse_usize(r: &SnapshotReader<'_>, s: &str) -> Result<usize, SnapshotError> {
    s.parse::<usize>()
        .map_err(|_| r.err(format!("bad count `{s}`")))
}

fn parse_u64_list(r: &SnapshotReader<'_>, s: &str) -> Result<Vec<u64>, SnapshotError> {
    if s == "-" {
        return Ok(Vec::new());
    }
    s.split(' ').map(|f| parse_u64(r, f)).collect()
}

fn f64_bits_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn parse_f64_bits(r: &SnapshotReader<'_>, s: &str) -> Result<f64, SnapshotError> {
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| r.err(format!("bad f64 bit pattern `{s}`")))
}

fn field<'a>(
    r: &SnapshotReader<'_>,
    fields: &[&'a str],
    idx: usize,
) -> Result<&'a str, SnapshotError> {
    fields
        .get(idx)
        .copied()
        .ok_or_else(|| r.err(format!("missing field {idx}")))
}

fn split_fields(line: &str) -> Vec<&str> {
    line.split('\t').collect()
}

// ---------------------------------------------------------------------------
// Partial impls
// ---------------------------------------------------------------------------

impl Snapshot for ActivityPartial {
    fn snapshot(&self, out: &mut String) {
        let mut users: Vec<&UserId> = self.per_user.keys().collect();
        users.sort_unstable();
        out.push_str(&format!("activity\t{}\n", users.len()));
        for user in users {
            let a = &self.per_user[user];
            out.push_str(&format!("{}\t{}\t{}\t", user.0, a.transactions, a.bytes));
            push_u64_list(out, sorted(&a.days).into_iter());
            out.push('\t');
            push_u64_list(out, sorted(&a.hours).into_iter());
            out.push('\n');
        }
    }

    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let head = r.tagged("activity")?;
        let n = parse_usize(r, field(r, &head, 0)?)?;
        let mut per_user = HashMap::with_capacity(n);
        for _ in 0..n {
            let fields = split_fields(r.line()?);
            let user = UserId(parse_u64(r, field(r, &fields, 0)?)?);
            let a = UserActivity {
                transactions: parse_u64(r, field(r, &fields, 1)?)?,
                bytes: parse_u64(r, field(r, &fields, 2)?)?,
                days: parse_u64_list(r, field(r, &fields, 3)?)?
                    .into_iter()
                    .collect(),
                hours: parse_u64_list(r, field(r, &fields, 4)?)?
                    .into_iter()
                    .collect(),
            };
            per_user.insert(user, a);
        }
        Ok(ActivityPartial { per_user })
    }
}

impl Snapshot for HourlyProfilePartial {
    fn snapshot(&self, out: &mut String) {
        out.push_str("hourly\n");
        for slot in 0..48 {
            out.push_str(&format!("{}\t{}\t", self.tx[slot], self.bytes[slot]));
            let mut pairs: Vec<(u64, UserId)> = self.users[slot].iter().copied().collect();
            pairs.sort_unstable();
            if pairs.is_empty() {
                out.push('-');
            } else {
                for (i, (day, user)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(' ');
                    }
                    out.push_str(&format!("{day}:{}", user.0));
                }
            }
            out.push('\n');
        }
    }

    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        r.tagged("hourly")?;
        let mut partial = <HourlyProfilePartial as crate::merge::Mergeable>::identity();
        for slot in 0..48 {
            let fields = split_fields(r.line()?);
            partial.tx[slot] = parse_u64(r, field(r, &fields, 0)?)?;
            partial.bytes[slot] = parse_u64(r, field(r, &fields, 1)?)?;
            let pairs = field(r, &fields, 2)?;
            if pairs != "-" {
                for pair in pairs.split(' ') {
                    let (day, user) = pair
                        .split_once(':')
                        .ok_or_else(|| r.err(format!("bad day:user pair `{pair}`")))?;
                    partial.users[slot].insert((parse_u64(r, day)?, UserId(parse_u64(r, user)?)));
                }
            }
        }
        Ok(partial)
    }
}

impl Snapshot for TransactionStatsPartial {
    fn snapshot(&self, out: &mut String) {
        out.push_str(&format!("tx-stats\t{}\n", self.sizes.len()));
        if self.sizes.is_empty() {
            out.push('-');
        } else {
            for (i, v) in self.sizes.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                out.push_str(&f64_bits_hex(*v));
            }
        }
        out.push('\n');
        self.activity.snapshot(out);
    }

    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let head = r.tagged("tx-stats")?;
        let n = parse_usize(r, field(r, &head, 0)?)?;
        let line = r.line()?;
        let mut sizes = Vec::with_capacity(n);
        if line != "-" {
            for f in line.split(' ') {
                sizes.push(parse_f64_bits(r, f)?);
            }
        }
        if sizes.len() != n {
            return Err(r.err(format!("expected {n} sizes, found {}", sizes.len())));
        }
        let activity = ActivityPartial::restore(r)?;
        Ok(TransactionStatsPartial { sizes, activity })
    }
}

impl Snapshot for TrafficPartial {
    fn snapshot(&self, out: &mut String) {
        let mut users: Vec<&UserId> = self.per_user.keys().collect();
        users.sort_unstable();
        out.push_str(&format!("traffic\t{}\n", users.len()));
        for user in users {
            let t = &self.per_user[user];
            out.push_str(&format!(
                "{}\t{}\t{}\t{}\t{}\n",
                user.0, t.bytes_total, t.tx_total, t.bytes_wearable, t.tx_wearable
            ));
        }
    }

    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let head = r.tagged("traffic")?;
        let n = parse_usize(r, field(r, &head, 0)?)?;
        let mut per_user = HashMap::with_capacity(n);
        for _ in 0..n {
            let fields = split_fields(r.line()?);
            per_user.insert(
                UserId(parse_u64(r, field(r, &fields, 0)?)?),
                UserTraffic {
                    bytes_total: parse_u64(r, field(r, &fields, 1)?)?,
                    tx_total: parse_u64(r, field(r, &fields, 2)?)?,
                    bytes_wearable: parse_u64(r, field(r, &fields, 3)?)?,
                    tx_wearable: parse_u64(r, field(r, &fields, 4)?)?,
                },
            );
        }
        Ok(TrafficPartial { per_user })
    }
}

impl Snapshot for MobilityPartial {
    fn snapshot(&self, out: &mut String) {
        out.push_str(&format!(
            "mobility\t{}\t{}\t{}\t{}\n",
            self.current.len(),
            self.day_sectors.len(),
            self.per_user.len(),
            self.first_event.len()
        ));
        #[allow(clippy::type_complexity)]
        let mut cur: Vec<(&(UserId, u64), &(u32, SimTime))> = self.current.iter().collect();
        cur.sort_unstable_by_key(|(k, _)| **k);
        for ((user, imei), (sector, since)) in cur {
            out.push_str(&format!(
                "{}\t{imei}\t{sector}\t{}\n",
                user.0,
                since.as_secs()
            ));
        }
        let mut days: Vec<(&(UserId, u64), &HashSet<u32>)> = self.day_sectors.iter().collect();
        days.sort_unstable_by_key(|(k, _)| **k);
        for ((user, day), set) in days {
            out.push_str(&format!("{}\t{day}\t", user.0));
            push_u64_list(out, sorted(set).into_iter().map(u64::from));
            out.push('\n');
        }
        let mut users: Vec<&UserId> = self.per_user.keys().collect();
        users.sort_unstable();
        for user in users {
            let m = &self.per_user[user];
            debug_assert!(
                m.daily_max_displacement_km.is_empty(),
                "displacement is a finish-stage product, not partial state"
            );
            out.push_str(&format!("{}\t", user.0));
            let mut dwell: Vec<(u32, u64)> =
                m.dwell_by_sector.iter().map(|(s, d)| (*s, *d)).collect();
            dwell.sort_unstable();
            if dwell.is_empty() {
                out.push('-');
            } else {
                for (i, (sector, secs)) in dwell.iter().enumerate() {
                    if i > 0 {
                        out.push(' ');
                    }
                    out.push_str(&format!("{sector}:{secs}"));
                }
            }
            out.push('\n');
        }
        let mut firsts: Vec<(&(UserId, u64), &SimTime)> = self.first_event.iter().collect();
        firsts.sort_unstable_by_key(|(k, _)| **k);
        for ((user, imei), t) in firsts {
            out.push_str(&format!("{}\t{imei}\t{}\n", user.0, t.as_secs()));
        }
    }

    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let head = r.tagged("mobility")?;
        let n_cur = parse_usize(r, field(r, &head, 0)?)?;
        let n_days = parse_usize(r, field(r, &head, 1)?)?;
        let n_users = parse_usize(r, field(r, &head, 2)?)?;
        let n_first = parse_usize(r, field(r, &head, 3)?)?;
        let mut partial = MobilityPartial::default();
        for _ in 0..n_cur {
            let fields = split_fields(r.line()?);
            let user = UserId(parse_u64(r, field(r, &fields, 0)?)?);
            let imei = parse_u64(r, field(r, &fields, 1)?)?;
            let sector = parse_u64(r, field(r, &fields, 2)?)? as u32;
            let since = SimTime::from_secs(parse_u64(r, field(r, &fields, 3)?)?);
            partial.current.insert((user, imei), (sector, since));
        }
        for _ in 0..n_days {
            let fields = split_fields(r.line()?);
            let user = UserId(parse_u64(r, field(r, &fields, 0)?)?);
            let day = parse_u64(r, field(r, &fields, 1)?)?;
            let sectors: HashSet<u32> = parse_u64_list(r, field(r, &fields, 2)?)?
                .into_iter()
                .map(|v| v as u32)
                .collect();
            partial.day_sectors.insert((user, day), sectors);
        }
        for _ in 0..n_users {
            let fields = split_fields(r.line()?);
            let user = UserId(parse_u64(r, field(r, &fields, 0)?)?);
            let mut m = UserMobility::default();
            let dwell = field(r, &fields, 1)?;
            if dwell != "-" {
                for pair in dwell.split(' ') {
                    let (sector, secs) = pair
                        .split_once(':')
                        .ok_or_else(|| r.err(format!("bad sector:dwell pair `{pair}`")))?;
                    m.dwell_by_sector
                        .insert(parse_u64(r, sector)? as u32, parse_u64(r, secs)?);
                }
            }
            partial.per_user.insert(user, m);
        }
        for _ in 0..n_first {
            let fields = split_fields(r.line()?);
            let user = UserId(parse_u64(r, field(r, &fields, 0)?)?);
            let imei = parse_u64(r, field(r, &fields, 1)?)?;
            let t = SimTime::from_secs(parse_u64(r, field(r, &fields, 2)?)?);
            partial.first_event.insert((user, imei), t);
        }
        Ok(partial)
    }
}

impl Snapshot for AppPopularityPartial {
    fn snapshot(&self, out: &mut String) {
        out.push_str(&format!(
            "popularity\t{}\t{}\n",
            self.day_users.len(),
            self.user_days.len()
        ));
        let mut day_users: Vec<(&(AppId, u64), &HashSet<UserId>)> = self.day_users.iter().collect();
        day_users.sort_unstable_by_key(|(k, _)| **k);
        for ((app, day), users) in day_users {
            out.push_str(&format!("{}\t{day}\t", app.0));
            push_u64_list(out, sorted(users).into_iter().map(|u| u.0));
            out.push('\n');
        }
        let mut user_days: Vec<(&(AppId, UserId), &HashSet<u64>)> = self.user_days.iter().collect();
        user_days.sort_unstable_by_key(|(k, _)| **k);
        for ((app, user), days) in user_days {
            out.push_str(&format!("{}\t{}\t", app.0, user.0));
            push_u64_list(out, sorted(days).into_iter());
            out.push('\n');
        }
        let mut apps: Vec<u16> = self.apps.iter().map(|a| a.0).collect();
        apps.sort_unstable();
        push_u64_list(out, apps.into_iter().map(u64::from));
        out.push('\n');
    }

    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let head = r.tagged("popularity")?;
        let n_day_users = parse_usize(r, field(r, &head, 0)?)?;
        let n_user_days = parse_usize(r, field(r, &head, 1)?)?;
        let mut partial = AppPopularityPartial::default();
        for _ in 0..n_day_users {
            let fields = split_fields(r.line()?);
            let app = AppId(parse_u64(r, field(r, &fields, 0)?)? as u16);
            let day = parse_u64(r, field(r, &fields, 1)?)?;
            let users: HashSet<UserId> = parse_u64_list(r, field(r, &fields, 2)?)?
                .into_iter()
                .map(UserId)
                .collect();
            partial.day_users.insert((app, day), users);
        }
        for _ in 0..n_user_days {
            let fields = split_fields(r.line()?);
            let app = AppId(parse_u64(r, field(r, &fields, 0)?)? as u16);
            let user = UserId(parse_u64(r, field(r, &fields, 1)?)?);
            let days: HashSet<u64> = parse_u64_list(r, field(r, &fields, 2)?)?
                .into_iter()
                .collect();
            partial.user_days.insert((app, user), days);
        }
        let apps_line = r.line()?;
        partial.apps = parse_u64_list(r, apps_line)?
            .into_iter()
            .map(|v| AppId(v as u16))
            .collect();
        Ok(partial)
    }
}

impl Snapshot for Vec<AttributedTx> {
    fn snapshot(&self, out: &mut String) {
        // Sequence order is semantic (it feeds a stable sort downstream):
        // written and restored in order, never sorted here.
        out.push_str(&format!("attributed\t{}\n", self.len()));
        for tx in self {
            let app = match tx.app {
                Some(a) => a.0.to_string(),
                None => "-".into(),
            };
            out.push_str(&format!(
                "{}\t{}\t{app}\t{}\t{}\n",
                tx.user.0,
                tx.timestamp.as_secs(),
                u8::from(tx.first_party),
                tx.bytes
            ));
        }
    }

    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let head = r.tagged("attributed")?;
        let n = parse_usize(r, field(r, &head, 0)?)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let fields = split_fields(r.line()?);
            let app_field = field(r, &fields, 2)?;
            let app = if app_field == "-" {
                None
            } else {
                Some(AppId(parse_u64(r, app_field)? as u16))
            };
            let first_party = match field(r, &fields, 3)? {
                "0" => false,
                "1" => true,
                other => return Err(r.err(format!("bad first-party flag `{other}`"))),
            };
            out.push(AttributedTx {
                user: UserId(parse_u64(r, field(r, &fields, 0)?)?),
                timestamp: SimTime::from_secs(parse_u64(r, field(r, &fields, 1)?)?),
                app,
                first_party,
                bytes: parse_u64(r, field(r, &fields, 4)?)?,
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::StudyContext;
    use crate::merge::{fold, Mergeable};
    use wearscope_appdb::AppCatalog;
    use wearscope_devicedb::DeviceDb;
    use wearscope_geo::SectorDirectory;
    use wearscope_simtime::{Calendar, ObservationWindow};
    use wearscope_trace::{MmeEvent, MmeRecord, ProxyRecord, Scheme, TraceStore};

    fn roundtrip<T: Snapshot>(value: &T) -> T {
        let mut text = String::new();
        value.snapshot(&mut text);
        let mut reader = SnapshotReader::new(&text);
        let restored = T::restore(&mut reader).expect("snapshot should restore");
        let mut text2 = String::new();
        restored.snapshot(&mut text2);
        assert_eq!(text, text2, "snapshot must be a fixed point");
        restored
    }

    fn sample_ctx(store: &TraceStore) -> (DeviceDb, AppCatalog, SectorDirectory) {
        let _ = store;
        (
            DeviceDb::standard(),
            AppCatalog::standard(),
            SectorDirectory::new(),
        )
    }

    fn proxy(db: &DeviceDb, user: u64, t: u64, bytes: u64) -> ProxyRecord {
        ProxyRecord {
            timestamp: SimTime::from_secs(t),
            user: UserId(user),
            imei: db.example_imei(db.wearable_tacs()[0], user as u32).as_u64(),
            host: "api.weather.com".into(),
            scheme: Scheme::Https,
            bytes_down: bytes,
            bytes_up: 7,
        }
    }

    #[test]
    fn proxy_partials_roundtrip() {
        let db = DeviceDb::standard();
        let records: Vec<ProxyRecord> = (0..120)
            .map(|i| proxy(&db, i % 5, i * 733, 50 + i * 11))
            .collect();
        let store = TraceStore::from_records(records, vec![]);
        let (db, catalog, sectors) = sample_ctx(&store);
        let ctx = StudyContext::new(
            &store,
            &db,
            &sectors,
            &catalog,
            ObservationWindow::new(14, 14, Calendar::PAPER),
        );
        let activity: ActivityPartial = fold(&ctx, store.proxy());
        roundtrip(&activity);
        let hourly: HourlyProfilePartial = fold(&ctx, store.proxy());
        roundtrip(&hourly);
        let tx_stats: TransactionStatsPartial = fold(&ctx, store.proxy());
        let traffic: TrafficPartial = fold(&ctx, store.proxy());
        roundtrip(&traffic);
        // Restored partials must also *finish* identically.
        let restored = roundtrip(&tx_stats);
        let a = tx_stats.finish(&ctx);
        let b = restored.finish(&ctx);
        assert_eq!(a, b);
    }

    #[test]
    fn mobility_partial_roundtrips_with_open_dwell() {
        let db = DeviceDb::standard();
        let imei = db.example_imei(db.wearable_tacs()[0], 1).as_u64();
        let mme = |t: u64, event: MmeEvent, sector: u32| MmeRecord {
            timestamp: SimTime::from_secs(t),
            user: UserId(1),
            imei,
            event,
            sector,
        };
        let records = vec![
            mme(100, MmeEvent::Attach, 5),
            mme(700, MmeEvent::SectorUpdate, 6), // dwell closed, one open
        ];
        let store = TraceStore::new();
        let (db, catalog, sectors) = sample_ctx(&store);
        let ctx = StudyContext::new(
            &store,
            &db,
            &sectors,
            &catalog,
            ObservationWindow::new(14, 14, Calendar::PAPER),
        );
        let partial: MobilityPartial = fold(&ctx, &records);
        let restored = roundtrip(&partial);
        assert_eq!(restored.finish(&ctx), partial.finish(&ctx));
    }

    #[test]
    fn popularity_and_attributed_roundtrip() {
        let txs = vec![
            AttributedTx {
                user: UserId(3),
                timestamp: SimTime::from_secs(900),
                app: Some(AppId(2)),
                first_party: true,
                bytes: 512,
            },
            AttributedTx {
                user: UserId(1),
                timestamp: SimTime::from_secs(900),
                app: None,
                first_party: false,
                bytes: 64,
            },
        ];
        let restored = roundtrip(&txs);
        assert_eq!(restored, txs); // order preserved, not sorted
        let store = TraceStore::new();
        let (db, catalog, sectors) = sample_ctx(&store);
        let ctx = StudyContext::new(
            &store,
            &db,
            &sectors,
            &catalog,
            ObservationWindow::compact(),
        );
        let mut pop = AppPopularityPartial::identity();
        for tx in &txs {
            pop.absorb(&ctx, tx);
        }
        roundtrip(&pop);
    }

    #[test]
    fn restore_rejects_wrong_tag() {
        let mut text = String::new();
        ActivityPartial::default().snapshot(&mut text);
        let mut reader = SnapshotReader::new(&text);
        let err = TrafficPartial::restore(&mut reader).unwrap_err();
        assert!(err.to_string().contains("traffic"), "{err}");
    }

    #[test]
    fn empty_partials_roundtrip() {
        roundtrip(&ActivityPartial::default());
        roundtrip(&TrafficPartial::default());
        roundtrip(&MobilityPartial::default());
        roundtrip(&AppPopularityPartial::default());
        roundtrip(&TransactionStatsPartial::default());
        roundtrip(&<HourlyProfilePartial as Mergeable>::identity());
        roundtrip(&Vec::<AttributedTx>::new());
    }
}
