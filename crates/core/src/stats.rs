//! Statistics utilities shared by all analyses: ECDFs, entropy,
//! correlation, and normalization helpers.

/// An empirical CDF over `f64` samples.
///
/// # Examples
/// ```
/// use wearscope_core::stats::Ecdf;
/// let e = Ecdf::from_samples(vec![1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(e.fraction_below(2.5), 0.5);
/// assert_eq!(e.quantile(0.5), 2.0);
/// assert_eq!(e.len(), 4);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF (NaNs are dropped).
    pub fn from_samples(mut samples: Vec<f64>) -> Ecdf {
        samples.retain(|x| !x.is_nan());
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs after filter"));
        Ecdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples strictly below `x` (0 when empty).
    pub fn fraction_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v < x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Fraction of samples at or below `x`.
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (nearest-rank, `q` clamped to [0, 1]); 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((q * self.sorted.len() as f64).ceil() as usize)
            .saturating_sub(1)
            .min(self.sorted.len() - 1);
        self.sorted[idx]
    }

    /// The median.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// The arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            0.0
        } else {
            self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
        }
    }

    /// Minimum sample (0 when empty).
    pub fn min(&self) -> f64 {
        self.sorted.first().copied().unwrap_or(0.0)
    }

    /// Maximum sample (0 when empty).
    pub fn max(&self) -> f64 {
        self.sorted.last().copied().unwrap_or(0.0)
    }

    /// The sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// `(x, F(x))` pairs at each distinct sample, for plotting.
    pub fn curve(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len();
        let mut out = Vec::new();
        let mut i = 0;
        while i < n {
            let x = self.sorted[i];
            let mut j = i;
            while j < n && self.sorted[j] == x {
                j += 1;
            }
            out.push((x, j as f64 / n as f64));
            i = j;
        }
        out
    }
}

/// Order-stable float summation: sorts ascending before summing, so the
/// result is identical no matter what container order produced `values`
/// (float addition is not associative; analyses iterate `HashMap`s whose
/// order varies run to run).
pub fn stable_sum<I: IntoIterator<Item = f64>>(values: I) -> f64 {
    let mut v: Vec<f64> = values.into_iter().collect();
    v.sort_by(f64::total_cmp);
    v.iter().sum()
}

/// Shannon entropy (nats) of a discrete distribution given by non-negative
/// weights; zero-weight entries are ignored. Returns 0 for degenerate input.
/// Insensitive to the order of `weights`.
pub fn shannon_entropy(weights: &[f64]) -> f64 {
    let mut positive: Vec<f64> = weights.iter().copied().filter(|w| *w > 0.0).collect();
    positive.sort_by(f64::total_cmp);
    let total: f64 = positive.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    -positive
        .iter()
        .map(|w| {
            let p = w / total;
            p * p.ln()
        })
        .sum::<f64>()
}

/// Pearson correlation coefficient of paired samples; 0 for degenerate input.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson needs paired samples");
    let n = xs.len() as f64;
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx).powi(2);
        vy += (y - my).powi(2);
    }
    if vx <= 0.0 || vy <= 0.0 {
        0.0
    } else {
        cov / (vx * vy).sqrt()
    }
}

/// Spearman rank correlation (Pearson over ranks, mean rank for ties).
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "spearman needs paired samples");
    pearson(&ranks(xs), &ranks(ys))
}

fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("no NaNs"));
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j < idx.len() && xs[idx[j]] == xs[idx[i]] {
            j += 1;
        }
        let mean_rank = (i + j - 1) as f64 / 2.0 + 1.0;
        for k in i..j {
            out[idx[k]] = mean_rank;
        }
        i = j;
    }
    out
}

/// Normalizes values so they sum to 1 (all-zero input stays zero).
pub fn normalize_sum(values: &[f64]) -> Vec<f64> {
    let total: f64 = values.iter().sum();
    if total <= 0.0 {
        vec![0.0; values.len()]
    } else {
        values.iter().map(|v| v / total).collect()
    }
}

/// Normalizes values by their maximum (the paper's confidentiality
/// normalization for Fig. 2(a)/4); all-zero input stays zero.
pub fn normalize_max(values: &[f64]) -> Vec<f64> {
    let max = values.iter().cloned().fold(0.0_f64, f64::max);
    if max <= 0.0 {
        vec![0.0; values.len()]
    } else {
        values.iter().map(|v| v / max).collect()
    }
}

/// A bootstrap confidence interval for a sample mean.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MeanCi {
    /// Point estimate (sample mean).
    pub mean: f64,
    /// Lower bound of the interval.
    pub lo: f64,
    /// Upper bound of the interval.
    pub hi: f64,
}

/// Percentile-bootstrap CI for the mean: `resamples` draws with replacement,
/// interval at `confidence` (e.g. 0.95). Deterministic in `seed` (a small
/// xorshift — no external RNG so the stats layer stays dependency-free).
///
/// Returns a degenerate interval for fewer than 2 samples.
pub fn bootstrap_mean_ci(samples: &[f64], resamples: usize, confidence: f64, seed: u64) -> MeanCi {
    let n = samples.len();
    let mean = if n == 0 {
        0.0
    } else {
        samples.iter().sum::<f64>() / n as f64
    };
    if n < 2 || resamples == 0 {
        return MeanCi {
            mean,
            lo: mean,
            hi: mean,
        };
    }
    let mut state = seed | 1;
    let mut next = || {
        // xorshift64*
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as usize
    };
    let mut means = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        let mut acc = 0.0;
        for _ in 0..n {
            acc += samples[next() % n];
        }
        means.push(acc / n as f64);
    }
    means.sort_by(f64::total_cmp);
    let alpha = (1.0 - confidence.clamp(0.0, 1.0)) / 2.0;
    let idx = |q: f64| ((q * resamples as f64) as usize).min(resamples - 1);
    MeanCi {
        mean,
        lo: means[idx(alpha)],
        hi: means[idx(1.0 - alpha)],
    }
}

/// Least-squares slope of `y` against `x` (per-unit-x growth), 0 when
/// degenerate. Used to fit the Fig. 2(a) adoption trend.
pub fn linear_slope(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len() as f64;
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut num = 0.0;
    let mut den = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        num += (x - mx) * (y - my);
        den += (x - mx).powi(2);
    }
    if den <= 0.0 {
        0.0
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecdf_basics() {
        let e = Ecdf::from_samples(vec![3.0, 1.0, 2.0, 4.0, 5.0]);
        assert_eq!(e.len(), 5);
        assert_eq!(e.min(), 1.0);
        assert_eq!(e.max(), 5.0);
        assert_eq!(e.median(), 3.0);
        assert_eq!(e.mean(), 3.0);
        assert_eq!(e.fraction_below(3.0), 0.4);
        assert_eq!(e.fraction_at_or_below(3.0), 0.6);
        assert_eq!(e.quantile(0.0), 1.0);
        assert_eq!(e.quantile(1.0), 5.0);
    }

    #[test]
    fn ecdf_empty_and_nan() {
        let e = Ecdf::from_samples(vec![]);
        assert!(e.is_empty());
        assert_eq!(e.median(), 0.0);
        assert_eq!(e.fraction_below(1.0), 0.0);
        let e = Ecdf::from_samples(vec![f64::NAN, 1.0]);
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn ecdf_single_sample() {
        let e = Ecdf::from_samples(vec![7.5]);
        assert_eq!(e.len(), 1);
        // Every quantile of a one-point distribution is that point.
        assert_eq!(e.quantile(0.0), 7.5);
        assert_eq!(e.quantile(0.5), 7.5);
        assert_eq!(e.quantile(1.0), 7.5);
        assert_eq!(e.median(), 7.5);
        assert_eq!(e.fraction_below(7.5), 0.0);
        assert_eq!(e.fraction_at_or_below(7.5), 1.0);
        assert_eq!(e.fraction_below(100.0), 1.0);
    }

    #[test]
    fn ecdf_quantile_clamps_and_hits_extremes() {
        let e = Ecdf::from_samples(vec![1.0, 2.0, 3.0, 4.0]);
        // Out-of-range q clamps rather than panics or extrapolates.
        assert_eq!(e.quantile(-0.5), 1.0);
        assert_eq!(e.quantile(1.5), 4.0);
        // q=0 is the minimum, q=1 the maximum (nearest-rank convention).
        assert_eq!(e.quantile(0.0), e.min());
        assert_eq!(e.quantile(1.0), e.max());
        // Just past a rank boundary steps to the next sample.
        assert_eq!(e.quantile(0.25), 1.0);
        assert_eq!(e.quantile(0.26), 2.0);
    }

    #[test]
    fn ecdf_duplicate_heavy_samples() {
        // 7 copies of 2.0 flanked by one 1.0 and two 3.0s.
        let mut v = vec![2.0; 7];
        v.push(1.0);
        v.extend([3.0, 3.0]);
        let e = Ecdf::from_samples(v);
        assert_eq!(e.len(), 10);
        // Strictly-below excludes the duplicate block, at-or-below
        // includes all of it — no partial credit for ties.
        assert_eq!(e.fraction_below(2.0), 0.1);
        assert_eq!(e.fraction_at_or_below(2.0), 0.8);
        // The quantile function is flat across the block.
        assert_eq!(e.quantile(0.2), 2.0);
        assert_eq!(e.quantile(0.5), 2.0);
        assert_eq!(e.quantile(0.8), 2.0);
        assert_eq!(e.quantile(0.81), 3.0);
        assert_eq!(e.curve(), vec![(1.0, 0.1), (2.0, 0.8), (3.0, 1.0)]);
    }

    #[test]
    fn ecdf_empty_quantile_extremes() {
        let e = Ecdf::from_samples(vec![]);
        assert_eq!(e.quantile(0.0), 0.0);
        assert_eq!(e.quantile(1.0), 0.0);
        assert_eq!(e.fraction_at_or_below(0.0), 0.0);
        assert_eq!(e.mean(), 0.0);
        assert_eq!(e.curve(), Vec::<(f64, f64)>::new());
    }

    #[test]
    fn ecdf_curve_collapses_duplicates() {
        let e = Ecdf::from_samples(vec![1.0, 1.0, 2.0]);
        assert_eq!(e.curve(), vec![(1.0, 2.0 / 3.0), (2.0, 1.0)]);
    }

    #[test]
    fn entropy_known_values() {
        assert_eq!(shannon_entropy(&[]), 0.0);
        assert_eq!(shannon_entropy(&[5.0]), 0.0);
        let h = shannon_entropy(&[1.0, 1.0]);
        assert!((h - std::f64::consts::LN_2).abs() < 1e-12);
        let h4 = shannon_entropy(&[1.0, 1.0, 1.0, 1.0]);
        assert!((h4 - 4.0_f64.ln()).abs() < 1e-12);
        // Skew lowers entropy.
        assert!(shannon_entropy(&[9.0, 1.0]) < std::f64::consts::LN_2);
        // Zero weights are ignored.
        assert_eq!(shannon_entropy(&[1.0, 0.0]), 0.0);
    }

    #[test]
    fn pearson_known_values() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((pearson(&xs, &[2.0, 4.0, 6.0, 8.0]) - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &[8.0, 6.0, 4.0, 2.0]) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&xs, &[5.0, 5.0, 5.0, 5.0]), 0.0);
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
    }

    #[test]
    fn spearman_is_rank_based() {
        // A monotone but non-linear relation has Spearman 1.
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [1.0, 8.0, 27.0, 64.0, 125.0];
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12);
        assert!(pearson(&xs, &ys) < 1.0);
    }

    #[test]
    fn normalizations() {
        assert_eq!(normalize_sum(&[1.0, 3.0]), vec![0.25, 0.75]);
        assert_eq!(normalize_max(&[1.0, 4.0, 2.0]), vec![0.25, 1.0, 0.5]);
        assert_eq!(normalize_sum(&[0.0, 0.0]), vec![0.0, 0.0]);
        assert_eq!(normalize_max(&[]), Vec::<f64>::new());
    }

    #[test]
    fn slope_fits_line() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 + 0.015 * x).collect();
        assert!((linear_slope(&xs, &ys) - 0.015).abs() < 1e-12);
        assert_eq!(linear_slope(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn bootstrap_ci_brackets_the_mean() {
        let samples: Vec<f64> = (0..500).map(|i| (i % 37) as f64).collect();
        let ci = bootstrap_mean_ci(&samples, 500, 0.95, 42);
        assert!(ci.lo <= ci.mean && ci.mean <= ci.hi);
        // Interval is tight around the true mean for a large sample.
        let true_mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((ci.mean - true_mean).abs() < 1e-9);
        assert!(ci.hi - ci.lo < 3.0, "interval too wide: {ci:?}");
        // Deterministic in the seed.
        assert_eq!(ci, bootstrap_mean_ci(&samples, 500, 0.95, 42));
        // Wider confidence → wider interval.
        let ci99 = bootstrap_mean_ci(&samples, 500, 0.99, 42);
        assert!(ci99.hi - ci99.lo >= ci.hi - ci.lo);
    }

    #[test]
    fn bootstrap_degenerate_inputs() {
        let ci = bootstrap_mean_ci(&[], 100, 0.95, 1);
        assert_eq!(ci.mean, 0.0);
        assert_eq!(ci.lo, ci.hi);
        let ci = bootstrap_mean_ci(&[5.0], 100, 0.95, 1);
        assert_eq!(ci.mean, 5.0);
        assert_eq!((ci.lo, ci.hi), (5.0, 5.0));
    }

    #[test]
    fn stable_sum_is_order_insensitive() {
        let a = vec![1e16, 1.0, -1e16, 3.0];
        let mut b = a.clone();
        b.reverse();
        assert_eq!(stable_sum(a.clone()), stable_sum(b));
        assert_eq!(stable_sum(Vec::<f64>::new()), 0.0);
    }

    #[test]
    fn entropy_order_insensitive() {
        let h1 = shannon_entropy(&[0.3, 0.5, 0.2]);
        let h2 = shannon_entropy(&[0.2, 0.3, 0.5]);
        assert_eq!(h1, h2);
    }

    #[test]
    fn ranks_handle_ties() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }
}
