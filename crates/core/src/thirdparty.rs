//! Third-party transaction analysis (Sec. 5.2, Fig. 8).

use std::collections::{HashMap, HashSet};

use wearscope_appdb::DomainClass;
use wearscope_trace::UserId;

use crate::context::StudyContext;

/// Fig. 8: per domain class (Application / Utilities / Advertising /
/// Analytics), the share of daily users, transaction frequency, and data.
#[derive(Clone, Debug)]
pub struct DomainBreakdown {
    /// Share of (day, user) pairs touching each class.
    pub users: [f64; 4],
    /// Share of transactions per class.
    pub frequency: [f64; 4],
    /// Share of bytes per class.
    pub data: [f64; 4],
    /// Transactions that matched no signature at all (diagnostic; excluded
    /// from the shares, mirroring the paper's signature-based method).
    pub unclassified_transactions: u64,
}

impl DomainBreakdown {
    /// Computes the breakdown over the wearable proxy log.
    pub fn compute(ctx: &StudyContext<'_>) -> DomainBreakdown {
        let mut day_users: [HashSet<(u64, UserId)>; 4] = Default::default();
        let mut tx = [0u64; 4];
        let mut bytes = [0u64; 4];
        let mut unclassified = 0u64;
        for r in ctx.wearable_proxy() {
            match ctx.classifier.classify(&r.host) {
                Some(c) => {
                    let i = c.domain_class().index();
                    day_users[i].insert((r.timestamp.day_index(), r.user));
                    tx[i] += 1;
                    bytes[i] += r.bytes_total();
                }
                None => unclassified += 1,
            }
        }
        let share = |xs: [f64; 4]| -> [f64; 4] {
            let total: f64 = xs.iter().sum::<f64>().max(1e-12);
            [xs[0] / total, xs[1] / total, xs[2] / total, xs[3] / total]
        };
        DomainBreakdown {
            users: share([
                day_users[0].len() as f64,
                day_users[1].len() as f64,
                day_users[2].len() as f64,
                day_users[3].len() as f64,
            ]),
            frequency: share([tx[0] as f64, tx[1] as f64, tx[2] as f64, tx[3] as f64]),
            data: share([
                bytes[0] as f64,
                bytes[1] as f64,
                bytes[2] as f64,
                bytes[3] as f64,
            ]),
            unclassified_transactions: unclassified,
        }
    }

    /// Value for one class of one metric.
    pub fn metric(&self, metric: &[f64; 4], class: DomainClass) -> f64 {
        metric[class.index()]
    }

    /// The paper's headline check: third-party (ads + analytics) data volume
    /// within one order of magnitude of first-party volume.
    pub fn thirdparty_within_order_of_magnitude(&self) -> bool {
        let app = self.data[DomainClass::Application.index()].max(1e-12);
        let ads = self.data[DomainClass::Advertising.index()];
        let analytics = self.data[DomainClass::Analytics.index()];
        let third = ads + analytics;
        third > 0.0 && app / third < 10.0
    }
}

/// Per-app third-party mixes (an extension beyond Fig. 8 used by the
/// ablation benches): which apps drive each class.
#[derive(Clone, Debug, Default)]
pub struct PerAppDomainMix {
    /// Per app name: bytes per domain class.
    pub by_app: HashMap<String, [u64; 4]>,
}

impl PerAppDomainMix {
    /// Computes per-app class byte mixes using timeframe attribution.
    pub fn compute(ctx: &StudyContext<'_>) -> PerAppDomainMix {
        let attributed = crate::sessions::attribute_transactions(ctx);
        // Re-classify each attributed transaction's bytes under its class.
        // `attribute_transactions` drops host info, so walk the log again in
        // parallel: both are in (user, time) order for wearable records.
        let mut class_by_key: HashMap<(UserId, u64, u64), usize> = HashMap::new();
        for r in ctx.wearable_proxy() {
            if let Some(c) = ctx.classifier.classify(&r.host) {
                class_by_key
                    .entry((r.user, r.timestamp.as_secs(), r.bytes_total()))
                    .or_insert(c.domain_class().index());
            }
        }
        let mut by_app: HashMap<String, [u64; 4]> = HashMap::new();
        for tx in &attributed {
            let Some(app) = tx.app else { continue };
            let Some(&i) = class_by_key.get(&(tx.user, tx.timestamp.as_secs(), tx.bytes)) else {
                continue;
            };
            let name = ctx
                .catalog
                .get(app)
                .map(|a| a.name.to_string())
                .unwrap_or_else(|| format!("app#{}", app.0));
            by_app.entry(name).or_default()[i] += tx.bytes;
        }
        PerAppDomainMix { by_app }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wearscope_appdb::AppCatalog;
    use wearscope_devicedb::DeviceDb;
    use wearscope_geo::SectorDirectory;
    use wearscope_simtime::{Calendar, ObservationWindow, SimTime};
    use wearscope_trace::{ProxyRecord, Scheme, TraceStore};

    fn rec(db: &DeviceDb, user: u64, t: u64, host: &str, bytes: u64) -> ProxyRecord {
        ProxyRecord {
            timestamp: SimTime::from_secs(t),
            user: UserId(user),
            imei: db.example_imei(db.wearable_tacs()[0], user as u32).as_u64(),
            host: host.into(),
            scheme: Scheme::Https,
            bytes_down: bytes,
            bytes_up: 0,
        }
    }

    #[test]
    fn breakdown_shares() {
        let db = DeviceDb::standard();
        let catalog = AppCatalog::standard();
        let sectors = SectorDirectory::new();
        let store = TraceStore::from_records(
            vec![
                rec(&db, 1, 10, "api.weather.com", 6000),     // Application
                rec(&db, 1, 20, "media.akamaized.net", 2000), // Utilities
                rec(&db, 1, 30, "ads.doubleclick.net", 1000), // Advertising
                rec(&db, 2, 40, "ssl.google-analytics.com", 1000), // Analytics
                rec(&db, 2, 50, "unknown.nowhere.example", 500), // unclassified
            ],
            vec![],
        );
        let ctx = StudyContext::new(
            &store,
            &db,
            &sectors,
            &catalog,
            ObservationWindow::new(14, 14, Calendar::PAPER),
        );
        let b = DomainBreakdown::compute(&ctx);
        assert_eq!(b.unclassified_transactions, 1);
        assert!((b.frequency.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((b.data[0] - 0.6).abs() < 1e-9);
        assert!((b.data[1] - 0.2).abs() < 1e-9);
        assert!((b.data[2] - 0.1).abs() < 1e-9);
        assert!((b.data[3] - 0.1).abs() < 1e-9);
        // Third-party (0.2) within one order of magnitude of first (0.6).
        assert!(b.thirdparty_within_order_of_magnitude());
        assert_eq!(b.metric(&b.data, DomainClass::Application), b.data[0]);
    }

    #[test]
    fn per_app_mix_attributes_thirdparty_bytes() {
        let db = DeviceDb::standard();
        let catalog = AppCatalog::standard();
        let sectors = SectorDirectory::new();
        let store = TraceStore::from_records(
            vec![
                rec(&db, 1, 10, "api.weather.com", 6000),
                rec(&db, 1, 20, "ads.doubleclick.net", 1000), // attributed to Weather
            ],
            vec![],
        );
        let ctx = StudyContext::new(
            &store,
            &db,
            &sectors,
            &catalog,
            ObservationWindow::new(14, 14, Calendar::PAPER),
        );
        let mix = PerAppDomainMix::compute(&ctx);
        let weather = &mix.by_app["Weather"];
        assert_eq!(weather[0], 6000);
        assert_eq!(weather[2], 1000);
    }

    #[test]
    fn empty_is_all_zero_but_normalized_safely() {
        let db = DeviceDb::standard();
        let catalog = AppCatalog::standard();
        let sectors = SectorDirectory::new();
        let store = TraceStore::new();
        let ctx = StudyContext::new(
            &store,
            &db,
            &sectors,
            &catalog,
            ObservationWindow::new(14, 14, Calendar::PAPER),
        );
        let b = DomainBreakdown::compute(&ctx);
        assert_eq!(b.unclassified_transactions, 0);
        assert!(!b.thirdparty_within_order_of_magnitude());
    }
}
