//! Through-Device wearable fingerprinting (Sec. 6 / conclusion).
//!
//! Most wearables relay via a paired smartphone and never appear in MME
//! logs under their own IMEI. The paper fingerprints them from smartphone
//! proxy traffic: Fitbit/Xiaomi sync endpoints attribute directly, and
//! wearable-specific endpoints of AccuWeather/Strava/Runtastic identify
//! generic Android/Apple wearables. The identified sample (~16 % of
//! Through-Device users, estimated from market reports) is then compared
//! against SIM-enabled users on macroscopic behaviour and mobility.

use std::collections::{HashMap, HashSet};

use wearscope_appdb::{fingerprint_host, ThroughDeviceKind};
use wearscope_trace::UserId;

use crate::context::StudyContext;
use crate::mobility::MobilityIndex;
use crate::stats::Ecdf;

/// The Sec. 6 analysis output.
#[derive(Clone, Debug)]
pub struct ThroughDeviceReport {
    /// Identified Through-Device users per tracker kind.
    pub identified: HashMap<ThroughDeviceKind, HashSet<UserId>>,
    /// All identified users.
    pub users: HashSet<UserId>,
    /// Estimated total Through-Device population, extrapolating the
    /// identified sample with the market-report coverage estimate.
    pub estimated_total: usize,
    /// The coverage fraction used for the extrapolation.
    pub assumed_coverage: f64,
    /// Mean daily max displacement of identified users (km).
    pub displacement_mean_km: f64,
    /// Mean daily max displacement of SIM-wearable owners (km), for the
    /// "similar macroscopic behaviour" comparison.
    pub sim_owner_displacement_mean_km: f64,
    /// Per-identified-user displacement distribution.
    pub displacement: Ecdf,
}

impl ThroughDeviceReport {
    /// The paper's coverage estimate: the fingerprintable sample covers
    /// ~16 % of Through-Device users.
    pub const MARKET_COVERAGE: f64 = 0.16;

    /// Runs the fingerprinting over smartphone proxy traffic and joins with
    /// mobility.
    pub fn compute(ctx: &StudyContext<'_>, mobility: &MobilityIndex) -> ThroughDeviceReport {
        let mut identified: HashMap<ThroughDeviceKind, HashSet<UserId>> = HashMap::new();
        let mut users = HashSet::new();
        for r in ctx.phone_proxy() {
            if let Some(kind) = fingerprint_host(&r.host) {
                identified.entry(kind).or_default().insert(r.user);
                users.insert(r.user);
            }
        }

        let displacement_samples: Vec<f64> = users
            .iter()
            .filter_map(|u| mobility.per_user.get(u))
            .map(|m| m.mean_daily_displacement())
            .collect();
        let displacement = Ecdf::from_samples(displacement_samples);

        let owner_samples: Vec<f64> = mobility
            .per_user
            .iter()
            .filter(|(u, _)| ctx.owners().contains(*u))
            .map(|(_, m)| m.mean_daily_displacement())
            .collect();
        let owners = Ecdf::from_samples(owner_samples);

        ThroughDeviceReport {
            estimated_total: (users.len() as f64 / Self::MARKET_COVERAGE).round() as usize,
            assumed_coverage: Self::MARKET_COVERAGE,
            displacement_mean_km: displacement.mean(),
            sim_owner_displacement_mean_km: owners.mean(),
            displacement,
            identified,
            users,
        }
    }

    /// `true` when identified Through-Device users' mean displacement is
    /// within `tolerance` (relative) of SIM-wearable owners' — the paper's
    /// "similar macroscopic behaviour and mobility patterns".
    pub fn mobility_similar_to_sim_users(&self, tolerance: f64) -> bool {
        if self.sim_owner_displacement_mean_km <= 0.0 {
            return false;
        }
        let rel = (self.displacement_mean_km - self.sim_owner_displacement_mean_km).abs()
            / self.sim_owner_displacement_mean_km;
        rel <= tolerance
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wearscope_appdb::AppCatalog;
    use wearscope_devicedb::{DeviceClass, DeviceDb};
    use wearscope_geo::{GeoPoint, SectorDirectory};
    use wearscope_simtime::{Calendar, ObservationWindow, SimTime};
    use wearscope_trace::{MmeEvent, MmeRecord, ProxyRecord, Scheme, TraceStore};

    fn rec(user: u64, imei: u64, t: u64, host: &str) -> ProxyRecord {
        ProxyRecord {
            timestamp: SimTime::from_secs(t),
            user: UserId(user),
            imei,
            host: host.into(),
            scheme: Scheme::Https,
            bytes_down: 1000,
            bytes_up: 100,
        }
    }

    #[test]
    fn fingerprints_identify_and_extrapolate() {
        let db = DeviceDb::standard();
        let catalog = AppCatalog::standard();
        let mut sectors = SectorDirectory::new();
        sectors.push(GeoPoint::new(40.0, -3.0), None);
        let p_tac = db.tacs_of_class(DeviceClass::Smartphone)[0];
        let p1 = db.example_imei(p_tac, 1).as_u64();
        let p2 = db.example_imei(p_tac, 2).as_u64();
        let p3 = db.example_imei(p_tac, 3).as_u64();
        let store = TraceStore::from_records(
            vec![
                rec(1, p1, 10, "android-api.fitbit.com"),
                rec(1, p1, 20, "m.popular-video.example"),
                rec(2, p2, 30, "wear.accuweather.com"),
                rec(3, p3, 40, "m.popular-video.example"), // no fingerprint
            ],
            vec![MmeRecord {
                timestamp: SimTime::from_secs(5),
                user: UserId(1),
                imei: p1,
                event: MmeEvent::Attach,
                sector: 0,
            }],
        );
        let ctx = StudyContext::new(
            &store,
            &db,
            &sectors,
            &catalog,
            ObservationWindow::new(14, 14, Calendar::PAPER),
        );
        let mobility = MobilityIndex::build(&ctx);
        let report = ThroughDeviceReport::compute(&ctx, &mobility);
        assert_eq!(report.users.len(), 2);
        assert!(report.identified[&ThroughDeviceKind::Fitbit].contains(&UserId(1)));
        assert!(report.identified[&ThroughDeviceKind::GenericAndroid].contains(&UserId(2)));
        assert_eq!(report.estimated_total, (2.0 / 0.16_f64).round() as usize);
        // No SIM owners in this trace → similarity check degenerates.
        assert!(!report.mobility_similar_to_sim_users(0.5));
    }

    #[test]
    fn empty_trace() {
        let db = DeviceDb::standard();
        let catalog = AppCatalog::standard();
        let sectors = SectorDirectory::new();
        let store = TraceStore::new();
        let ctx = StudyContext::new(
            &store,
            &db,
            &sectors,
            &catalog,
            ObservationWindow::new(14, 14, Calendar::PAPER),
        );
        let mobility = MobilityIndex::build(&ctx);
        let report = ThroughDeviceReport::compute(&ctx, &mobility);
        assert!(report.users.is_empty());
        assert_eq!(report.estimated_total, 0);
    }
}
