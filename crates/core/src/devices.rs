//! Device-population analysis (Sec. 4.1's device observations).
//!
//! The paper notes that "most users are using LG and Samsung SIM-enabled
//! watches" and that the operator does not yet carry the Apple Watch 3.
//! This analysis recovers the wearable model/manufacturer/OS mix from the
//! logs via the device-database join — the same IMEI → TAC → model pipeline
//! used for identification.

use std::collections::{HashMap, HashSet};

use wearscope_devicedb::{DeviceClass, Imei};
use wearscope_trace::UserId;

use crate::context::StudyContext;

/// The observed wearable device mix.
#[derive(Clone, Debug, Default)]
pub struct DeviceMix {
    /// Distinct users per wearable model name.
    pub users_by_model: HashMap<&'static str, usize>,
    /// Distinct users per manufacturer.
    pub users_by_manufacturer: HashMap<&'static str, usize>,
    /// Distinct users per OS family name.
    pub users_by_os: HashMap<&'static str, usize>,
    /// Total distinct wearable users observed.
    pub total_users: usize,
}

impl DeviceMix {
    /// Computes the mix over every wearable device seen in either log.
    pub fn compute(ctx: &StudyContext<'_>) -> DeviceMix {
        // (user, imei) pairs for wearable devices, deduplicated.
        let mut seen: HashSet<(UserId, u64)> = HashSet::new();
        let mut users_by_model: HashMap<&'static str, HashSet<UserId>> = HashMap::new();
        let mut users_by_manufacturer: HashMap<&'static str, HashSet<UserId>> = HashMap::new();
        let mut users_by_os: HashMap<&'static str, HashSet<UserId>> = HashMap::new();
        let mut all_users: HashSet<UserId> = HashSet::new();

        let mut note = |user: UserId, imei: u64| {
            if ctx.device_class(imei) != Some(DeviceClass::CellularWearable) {
                return;
            }
            if !seen.insert((user, imei)) {
                return;
            }
            let Some(rec) = Imei::from_u64(imei).ok().and_then(|i| ctx.db.lookup(i)) else {
                return;
            };
            users_by_model.entry(rec.model).or_default().insert(user);
            users_by_manufacturer
                .entry(rec.manufacturer)
                .or_default()
                .insert(user);
            // OS display name is 'static via a small match.
            let os: &'static str = match rec.os {
                wearscope_devicedb::DeviceOs::AndroidWear => "AndroidWear",
                wearscope_devicedb::DeviceOs::Tizen => "Tizen",
                wearscope_devicedb::DeviceOs::Android => "Android",
                wearscope_devicedb::DeviceOs::Ios => "iOS",
                wearscope_devicedb::DeviceOs::WatchOs => "watchOS",
                wearscope_devicedb::DeviceOs::Rtos => "RTOS",
            };
            users_by_os.entry(os).or_default().insert(user);
            all_users.insert(user);
        };

        for r in ctx.store.proxy() {
            note(r.user, r.imei);
        }
        for r in ctx.store.mme() {
            note(r.user, r.imei);
        }

        let collapse = |m: HashMap<&'static str, HashSet<UserId>>| {
            m.into_iter().map(|(k, v)| (k, v.len())).collect()
        };
        DeviceMix {
            users_by_model: collapse(users_by_model),
            users_by_manufacturer: collapse(users_by_manufacturer),
            users_by_os: collapse(users_by_os),
            total_users: all_users.len(),
        }
    }

    /// Combined share of the given manufacturers (0 when no users).
    pub fn manufacturer_share(&self, names: &[&str]) -> f64 {
        if self.total_users == 0 {
            return 0.0;
        }
        let n: usize = names
            .iter()
            .map(|m| self.users_by_manufacturer.get(m).copied().unwrap_or(0))
            .sum();
        n as f64 / self.total_users as f64
    }

    /// Models ranked by user count, descending.
    pub fn ranked_models(&self) -> Vec<(&'static str, usize)> {
        let mut v: Vec<(&'static str, usize)> =
            self.users_by_model.iter().map(|(k, n)| (*k, *n)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wearscope_appdb::AppCatalog;
    use wearscope_devicedb::DeviceDb;
    use wearscope_geo::SectorDirectory;
    use wearscope_simtime::{ObservationWindow, SimTime};
    use wearscope_trace::{MmeEvent, MmeRecord, ProxyRecord, Scheme, TraceStore};

    #[test]
    fn mix_counts_distinct_users_per_model() {
        let db = DeviceDb::standard();
        let catalog = AppCatalog::standard();
        let sectors = SectorDirectory::new();
        let tacs = db.wearable_tacs();
        // Two users on TAC 0's model (one via proxy, one via MME), one user
        // on another model.
        let imei_a1 = db.example_imei(tacs[0], 1).as_u64();
        let imei_a2 = db.example_imei(tacs[0], 2).as_u64();
        let imei_b = db.example_imei(*tacs.last().unwrap(), 3).as_u64();
        let store = TraceStore::from_records(
            vec![ProxyRecord {
                timestamp: SimTime::from_secs(10),
                user: UserId(1),
                imei: imei_a1,
                host: "api.weather.com".into(),
                scheme: Scheme::Https,
                bytes_down: 100,
                bytes_up: 10,
            }],
            vec![
                MmeRecord {
                    timestamp: SimTime::from_secs(20),
                    user: UserId(2),
                    imei: imei_a2,
                    event: MmeEvent::Attach,
                    sector: 0,
                },
                MmeRecord {
                    timestamp: SimTime::from_secs(30),
                    user: UserId(3),
                    imei: imei_b,
                    event: MmeEvent::Attach,
                    sector: 0,
                },
            ],
        );
        let ctx = StudyContext::new(
            &store,
            &db,
            &sectors,
            &catalog,
            ObservationWindow::compact(),
        );
        let mix = DeviceMix::compute(&ctx);
        assert_eq!(mix.total_users, 3);
        let ranked = mix.ranked_models();
        assert_eq!(ranked[0].1, 2);
        let sum: usize = mix.users_by_model.values().sum();
        assert_eq!(sum, 3);
        // Manufacturer shares sum to 1 for this disjoint assignment.
        let all: f64 = mix
            .users_by_manufacturer
            .keys()
            .map(|m| mix.manufacturer_share(&[m]))
            .sum();
        assert!((all - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_logs() {
        let db = DeviceDb::standard();
        let catalog = AppCatalog::standard();
        let sectors = SectorDirectory::new();
        let store = TraceStore::new();
        let ctx = StudyContext::new(
            &store,
            &db,
            &sectors,
            &catalog,
            ObservationWindow::compact(),
        );
        let mix = DeviceMix::compute(&ctx);
        assert_eq!(mix.total_users, 0);
        assert_eq!(mix.manufacturer_share(&["Samsung"]), 0.0);
        assert!(mix.ranked_models().is_empty());
    }
}
