//! Weekly-pattern analysis (Sec. 4.2's second takeaway).
//!
//! The paper finds no strong day-of-week pattern in absolute wearable
//! activity, but observes that *relative to the overall ISP traffic*
//! wearable usage is slightly higher on weekends and evenings — attributed
//! to the demographics of early wearable adopters.

use std::collections::{HashMap, HashSet};

use wearscope_trace::UserId;

use crate::context::StudyContext;

/// Day-of-week activity profile plus the wearable-vs-overall relative usage.
#[derive(Clone, Debug)]
pub struct WeeklyPattern {
    /// Share of wearable transactions per weekday (Mon..Sun), sums to 1.
    pub wearable_tx_by_weekday: [f64; 7],
    /// Share of *all* (phone + wearable) transactions per weekday.
    pub total_tx_by_weekday: [f64; 7],
    /// Average share of week-active wearable users active per day
    /// (paper: ≈ 35 %, flat across days).
    pub daily_user_share: [f64; 7],
    /// `wearable weekend tx share / total weekend tx share` — above 1 means
    /// wearables are relatively more used on weekends (paper: slightly > 1).
    pub weekend_relative_usage: f64,
    /// Same ratio for evening hours (16:00–22:00).
    pub evening_relative_usage: f64,
}

impl WeeklyPattern {
    /// Computes the pattern over the detailed window.
    pub fn compute(ctx: &StudyContext<'_>) -> WeeklyPattern {
        let cal = ctx.window.calendar();
        let mut wearable = [0.0_f64; 7];
        let mut total = [0.0_f64; 7];
        let mut wearable_evening = 0.0_f64;
        let mut total_evening = 0.0_f64;
        let mut wearable_all = 0.0_f64;
        let mut total_all = 0.0_f64;
        // Per (weekday, user): days seen, for the daily user share.
        let mut users_by_day: HashMap<u64, HashSet<UserId>> = HashMap::new();
        let mut weekly_users: HashMap<u64, HashSet<UserId>> = HashMap::new();

        for r in ctx.store.proxy() {
            let wd = cal.weekday(r.timestamp).index() as usize;
            let is_wearable = ctx.is_wearable_record(r);
            let evening = (16..22).contains(&r.timestamp.hour_of_day());
            total[wd] += 1.0;
            total_all += 1.0;
            if evening {
                total_evening += 1.0;
            }
            if is_wearable {
                wearable[wd] += 1.0;
                wearable_all += 1.0;
                if evening {
                    wearable_evening += 1.0;
                }
                users_by_day
                    .entry(r.timestamp.day_index())
                    .or_default()
                    .insert(r.user);
                weekly_users
                    .entry(r.timestamp.week_index())
                    .or_default()
                    .insert(r.user);
            }
        }

        let norm = |xs: [f64; 7]| -> [f64; 7] {
            let sum: f64 = xs.iter().sum::<f64>().max(1e-12);
            let mut out = [0.0; 7];
            for (o, x) in out.iter_mut().zip(xs) {
                *o = x / sum;
            }
            out
        };
        let wearable_share = norm(wearable);
        let total_share = norm(total);

        // Daily user share per weekday, averaged across the window's days.
        let mut day_share_acc = [0.0_f64; 7];
        let mut day_share_n = [0usize; 7];
        let mut days: Vec<u64> = ctx.window.detailed().days().collect();
        days.sort_unstable();
        for day in days {
            let wd = cal.weekday_of_day(day).index() as usize;
            let week = day / 7;
            let weekly = weekly_users.get(&week).map_or(0, HashSet::len);
            if weekly == 0 {
                continue;
            }
            let daily = users_by_day.get(&day).map_or(0, HashSet::len);
            day_share_acc[wd] += daily as f64 / weekly as f64;
            day_share_n[wd] += 1;
        }
        let mut daily_user_share = [0.0; 7];
        for i in 0..7 {
            if day_share_n[i] > 0 {
                daily_user_share[i] = day_share_acc[i] / day_share_n[i] as f64;
            }
        }

        // Relative weekend usage: wearable weekend share over total weekend
        // share (Sat=5, Sun=6 in Monday-first indexing).
        let weekend_w = wearable_share[5] + wearable_share[6];
        let weekend_t = (total_share[5] + total_share[6]).max(1e-12);
        let evening_w = if wearable_all > 0.0 {
            wearable_evening / wearable_all
        } else {
            0.0
        };
        let evening_t = if total_all > 0.0 {
            total_evening / total_all
        } else {
            1e-12
        };

        WeeklyPattern {
            wearable_tx_by_weekday: wearable_share,
            total_tx_by_weekday: total_share,
            daily_user_share,
            weekend_relative_usage: weekend_w / weekend_t,
            evening_relative_usage: evening_w / evening_t.max(1e-12),
        }
    }

    /// Coefficient of variation of the wearable weekday shares — the paper
    /// reports activity "almost constant across days" (low CV).
    pub fn weekday_cv(&self) -> f64 {
        let mean = self.wearable_tx_by_weekday.iter().sum::<f64>() / 7.0;
        if mean <= 0.0 {
            return 0.0;
        }
        let var = self
            .wearable_tx_by_weekday
            .iter()
            .map(|x| (x - mean).powi(2))
            .sum::<f64>()
            / 7.0;
        var.sqrt() / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wearscope_appdb::AppCatalog;
    use wearscope_devicedb::{DeviceClass, DeviceDb};
    use wearscope_geo::SectorDirectory;
    use wearscope_simtime::{Calendar, ObservationWindow, SimTime};
    use wearscope_trace::{ProxyRecord, Scheme, TraceStore};

    fn rec(user: u64, imei: u64, day: u64, hour: u64) -> ProxyRecord {
        ProxyRecord {
            timestamp: SimTime::from_hours(day * 24 + hour),
            user: UserId(user),
            imei,
            host: "h".into(),
            scheme: Scheme::Https,
            bytes_down: 100,
            bytes_up: 0,
        }
    }

    #[test]
    fn weekend_relative_usage_detects_shift() {
        let db = DeviceDb::standard();
        let catalog = AppCatalog::standard();
        let sectors = SectorDirectory::new();
        let w = db.example_imei(db.wearable_tacs()[0], 1).as_u64();
        let p = db
            .example_imei(db.tacs_of_class(DeviceClass::Smartphone)[0], 2)
            .as_u64();
        // Window day0 = Friday; day1/day2 are the weekend.
        // Wearable: 2 weekday tx, 4 weekend tx. Phone: 8 weekday, 2 weekend.
        let mut records = Vec::new();
        records.push(rec(1, w, 0, 10));
        records.push(rec(1, w, 3, 10));
        for k in 0..4 {
            records.push(rec(1, w, 1 + (k % 2), 10 + k));
        }
        for k in 0..8 {
            records.push(rec(2, p, 3 + (k % 3), 9 + k % 5));
        }
        records.push(rec(2, p, 1, 12));
        records.push(rec(2, p, 2, 12));
        let store = TraceStore::from_records(records, vec![]);
        let ctx = StudyContext::new(
            &store,
            &db,
            &sectors,
            &catalog,
            ObservationWindow::new(7, 7, Calendar::PAPER),
        );
        let p = WeeklyPattern::compute(&ctx);
        // Wearable weekend share: 4/6; total weekend share: 6/16.
        assert!(
            p.weekend_relative_usage > 1.0,
            "{}",
            p.weekend_relative_usage
        );
        let sum: f64 = p.wearable_tx_by_weekday.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        let sum: f64 = p.total_tx_by_weekday.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn flat_activity_has_low_cv() {
        let db = DeviceDb::standard();
        let catalog = AppCatalog::standard();
        let sectors = SectorDirectory::new();
        let w = db.example_imei(db.wearable_tacs()[0], 1).as_u64();
        let mut records = Vec::new();
        for day in 0..7 {
            for k in 0..10 {
                records.push(rec(1, w, day, 8 + k % 12));
            }
        }
        let store = TraceStore::from_records(records, vec![]);
        let ctx = StudyContext::new(
            &store,
            &db,
            &sectors,
            &catalog,
            ObservationWindow::new(7, 7, Calendar::PAPER),
        );
        let p = WeeklyPattern::compute(&ctx);
        assert!(p.weekday_cv() < 0.01, "cv {}", p.weekday_cv());
        // Single user active every day → daily share 1.0 on all days.
        assert!(p.daily_user_share.iter().all(|&s| (s - 1.0).abs() < 1e-9));
    }

    #[test]
    fn empty_logs() {
        let db = DeviceDb::standard();
        let catalog = AppCatalog::standard();
        let sectors = SectorDirectory::new();
        let store = TraceStore::new();
        let ctx = StudyContext::new(
            &store,
            &db,
            &sectors,
            &catalog,
            ObservationWindow::compact(),
        );
        let p = WeeklyPattern::compute(&ctx);
        assert_eq!(p.weekday_cv(), 0.0);
        assert!(p.daily_user_share.iter().all(|&s| s == 0.0));
    }
}
