//! Owner-vs-rest traffic comparison (Sec. 4.3, Fig. 4(a,b)).
//!
//! "Users that have wearable devices" are identified from the logs alone:
//! any subscriber observed with a SIM-enabled-wearable IMEI. Their *total*
//! traffic (all devices — the wearable plus their smartphone) is compared
//! against the remaining customers.

use std::collections::HashMap;

use wearscope_trace::UserId;

use crate::context::StudyContext;
use crate::stats::Ecdf;

/// Per-user traffic totals over the detailed window.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UserTraffic {
    /// Bytes over all devices.
    pub bytes_total: u64,
    /// Transactions over all devices.
    pub tx_total: u64,
    /// Bytes from the wearable alone.
    pub bytes_wearable: u64,
    /// Transactions from the wearable alone.
    pub tx_wearable: u64,
}

/// Folds the proxy log into per-user traffic totals.
///
/// Delegates to the mergeable [`crate::merge::TrafficPartial`] with a
/// single implicit shard, so this sequential path and the parallel ingest
/// engine run the same fold.
pub fn user_traffic(ctx: &StudyContext<'_>) -> HashMap<UserId, UserTraffic> {
    use crate::merge::{fold, Mergeable, TrafficPartial};
    fold::<TrafficPartial>(ctx, ctx.store.proxy()).finish(ctx)
}

/// Fig. 4(a) (plus the +26 % / +48 % takeaways): the distribution of
/// per-user traffic for wearable owners vs the remaining customers.
#[derive(Clone, Debug, PartialEq)]
pub struct OwnerVsRest {
    /// Per-user total bytes, owners.
    pub owner_bytes: Ecdf,
    /// Per-user total bytes, remaining customers.
    pub rest_bytes: Ecdf,
    /// Per-user transactions, owners.
    pub owner_tx: Ecdf,
    /// Per-user transactions, remaining customers.
    pub rest_tx: Ecdf,
    /// `mean(owner bytes) / mean(rest bytes)` (paper: ≈ 1.26).
    pub bytes_ratio: f64,
    /// `mean(owner tx) / mean(rest tx)` (paper: ≈ 1.48).
    pub tx_ratio: f64,
}

impl OwnerVsRest {
    /// Computes the comparison over all data-active users.
    pub fn compute(ctx: &StudyContext<'_>, traffic: &HashMap<UserId, UserTraffic>) -> OwnerVsRest {
        let mut ob = Vec::new();
        let mut rb = Vec::new();
        let mut ot = Vec::new();
        let mut rt = Vec::new();
        for (user, t) in traffic {
            if t.tx_total == 0 {
                continue;
            }
            if ctx.owners().contains(user) {
                ob.push(t.bytes_total as f64);
                ot.push(t.tx_total as f64);
            } else {
                rb.push(t.bytes_total as f64);
                rt.push(t.tx_total as f64);
            }
        }
        let owner_bytes = Ecdf::from_samples(ob);
        let rest_bytes = Ecdf::from_samples(rb);
        let owner_tx = Ecdf::from_samples(ot);
        let rest_tx = Ecdf::from_samples(rt);
        let ratio = |a: &Ecdf, b: &Ecdf| {
            if b.mean() > 0.0 {
                a.mean() / b.mean()
            } else {
                0.0
            }
        };
        OwnerVsRest {
            bytes_ratio: ratio(&owner_bytes, &rest_bytes),
            tx_ratio: ratio(&owner_tx, &rest_tx),
            owner_bytes,
            rest_bytes,
            owner_tx,
            rest_tx,
        }
    }
}

/// Fig. 4(b): the share of an owner's traffic that comes from the wearable
/// itself.
#[derive(Clone, Debug)]
pub struct WearableShare {
    /// Per-owner `wearable bytes / total bytes`.
    pub ratio: Ecdf,
    /// Mean ratio (paper: ~10⁻³, "three magnitudes smaller").
    pub mean_ratio: f64,
    /// Fraction of owners with at least 3 % of their traffic from the
    /// wearable (paper: 10 %).
    pub frac_over_3pct: f64,
}

impl WearableShare {
    /// Computes the share over wearable owners with any traffic.
    pub fn compute(
        ctx: &StudyContext<'_>,
        traffic: &HashMap<UserId, UserTraffic>,
    ) -> WearableShare {
        let ratios: Vec<f64> = traffic
            .iter()
            .filter(|(user, t)| ctx.owners().contains(user) && t.bytes_total > 0)
            .map(|(_, t)| t.bytes_wearable as f64 / t.bytes_total as f64)
            .collect();
        let ratio = Ecdf::from_samples(ratios);
        WearableShare {
            mean_ratio: ratio.mean(),
            frac_over_3pct: 1.0 - ratio.fraction_below(0.03),
            ratio,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wearscope_appdb::AppCatalog;
    use wearscope_devicedb::{DeviceClass, DeviceDb};
    use wearscope_geo::SectorDirectory;
    use wearscope_simtime::{ObservationWindow, SimTime};
    use wearscope_trace::{ProxyRecord, Scheme, TraceStore};

    fn rec(user: u64, imei: u64, bytes: u64, t: u64) -> ProxyRecord {
        ProxyRecord {
            timestamp: SimTime::from_secs(t),
            user: UserId(user),
            imei,
            host: "h.example.com".into(),
            scheme: Scheme::Https,
            bytes_down: bytes,
            bytes_up: 0,
        }
    }

    fn setup(records: Vec<ProxyRecord>) -> (TraceStore, DeviceDb, SectorDirectory, AppCatalog) {
        (
            TraceStore::from_records(records, vec![]),
            DeviceDb::standard(),
            SectorDirectory::new(),
            AppCatalog::standard(),
        )
    }

    #[test]
    fn owner_identified_and_ratios_computed() {
        let db = DeviceDb::standard();
        let w = db.example_imei(db.wearable_tacs()[0], 1).as_u64();
        let p1 = db
            .example_imei(db.tacs_of_class(DeviceClass::Smartphone)[0], 1)
            .as_u64();
        let p2 = db
            .example_imei(db.tacs_of_class(DeviceClass::Smartphone)[0], 2)
            .as_u64();
        // User 1 (owner): wearable 100 B + phone 10 000 B, 3 tx total.
        // User 2 (rest): phone 8 000 B, 2 tx.
        let records = vec![
            rec(1, w, 100, 10),
            rec(1, p1, 4000, 20),
            rec(1, p1, 6000, 30),
            rec(2, p2, 3000, 40),
            rec(2, p2, 5000, 50),
        ];
        let (store, db, sectors, catalog) = setup(records);
        let ctx = StudyContext::new(
            &store,
            &db,
            &sectors,
            &catalog,
            ObservationWindow::compact(),
        );
        let traffic = user_traffic(&ctx);
        assert_eq!(traffic[&UserId(1)].bytes_total, 10_100);
        assert_eq!(traffic[&UserId(1)].bytes_wearable, 100);
        assert_eq!(traffic[&UserId(1)].tx_wearable, 1);
        assert_eq!(traffic[&UserId(2)].bytes_wearable, 0);

        let cmp = OwnerVsRest::compute(&ctx, &traffic);
        assert_eq!(cmp.owner_bytes.len(), 1);
        assert_eq!(cmp.rest_bytes.len(), 1);
        assert!((cmp.bytes_ratio - 10_100.0 / 8_000.0).abs() < 1e-9);
        assert!((cmp.tx_ratio - 3.0 / 2.0).abs() < 1e-9);

        let share = WearableShare::compute(&ctx, &traffic);
        assert_eq!(share.ratio.len(), 1);
        assert!((share.mean_ratio - 100.0 / 10_100.0).abs() < 1e-9);
        assert_eq!(share.frac_over_3pct, 0.0);
    }

    #[test]
    fn owners_with_heavy_wearable_use_show_in_tail() {
        let db = DeviceDb::standard();
        let w1 = db.example_imei(db.wearable_tacs()[0], 1).as_u64();
        let w2 = db.example_imei(db.wearable_tacs()[0], 2).as_u64();
        let p = db.tacs_of_class(DeviceClass::Smartphone)[0];
        let p1 = db.example_imei(p, 1).as_u64();
        let p2 = db.example_imei(p, 2).as_u64();
        // Owner 1: 1% wearable. Owner 2: 50% wearable.
        let records = vec![
            rec(1, w1, 100, 1),
            rec(1, p1, 9900, 2),
            rec(2, w2, 5000, 3),
            rec(2, p2, 5000, 4),
        ];
        let (store, db, sectors, catalog) = setup(records);
        let ctx = StudyContext::new(
            &store,
            &db,
            &sectors,
            &catalog,
            ObservationWindow::compact(),
        );
        let traffic = user_traffic(&ctx);
        let share = WearableShare::compute(&ctx, &traffic);
        assert_eq!(share.ratio.len(), 2);
        assert!((share.frac_over_3pct - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_logs_no_panics() {
        let (store, db, sectors, catalog) = setup(vec![]);
        let ctx = StudyContext::new(
            &store,
            &db,
            &sectors,
            &catalog,
            ObservationWindow::compact(),
        );
        let traffic = user_traffic(&ctx);
        let cmp = OwnerVsRest::compute(&ctx, &traffic);
        assert_eq!(cmp.bytes_ratio, 0.0);
        let share = WearableShare::compute(&ctx, &traffic);
        assert!(share.ratio.is_empty());
    }
}
