//! The study context: logs plus lookup services, pre-indexed.

use std::collections::{HashMap, HashSet};

use wearscope_appdb::{AppCatalog, SniClassifier};
use wearscope_devicedb::{DeviceClass, DeviceDb, Imei};
use wearscope_geo::SectorDirectory;
use wearscope_simtime::ObservationWindow;
use wearscope_trace::{ProxyRecord, TraceStore, UserId};

/// Everything an analysis needs, bundled: the detailed-window logs, the
/// three lookup services of Fig. 1 (device DB, cell plan, app signatures),
/// and the observation window. Mirrors exactly the inputs the paper's
/// authors had — no generator ground truth.
pub struct StudyContext<'a> {
    /// Detailed-window logs.
    pub store: &'a TraceStore,
    /// Device database (IMEI → model/class).
    pub db: &'a DeviceDb,
    /// Sector directory (sector id → coordinates).
    pub sectors: &'a SectorDirectory,
    /// App catalog.
    pub catalog: &'a AppCatalog,
    /// SNI/host classifier built over `catalog` plus third-party signatures.
    pub classifier: SniClassifier,
    /// Observation window.
    pub window: ObservationWindow,
    /// Cached IMEI → device class for every IMEI in the logs.
    class_by_imei: HashMap<u64, Option<DeviceClass>>,
    /// Users observed with a SIM-enabled wearable device.
    owners: HashSet<UserId>,
    /// All users observed in either log.
    all_users: HashSet<UserId>,
}

impl<'a> StudyContext<'a> {
    /// Builds the context, scanning the logs once to index devices/users.
    pub fn new(
        store: &'a TraceStore,
        db: &'a DeviceDb,
        sectors: &'a SectorDirectory,
        catalog: &'a AppCatalog,
        window: ObservationWindow,
    ) -> StudyContext<'a> {
        let classifier = SniClassifier::build(catalog);
        let mut class_by_imei: HashMap<u64, Option<DeviceClass>> = HashMap::new();
        let mut owners = HashSet::new();
        let mut all_users = HashSet::new();
        let mut classify = |imei: u64, user: UserId| {
            let class = *class_by_imei.entry(imei).or_insert_with(|| {
                Imei::from_u64(imei)
                    .ok()
                    .and_then(|i| db.lookup(i))
                    .map(|r| r.class)
            });
            all_users.insert(user);
            if class == Some(DeviceClass::CellularWearable) {
                owners.insert(user);
            }
        };
        for r in store.proxy() {
            classify(r.imei, r.user);
        }
        for r in store.mme() {
            classify(r.imei, r.user);
        }
        StudyContext {
            store,
            db,
            sectors,
            catalog,
            classifier,
            window,
            class_by_imei,
            owners,
            all_users,
        }
    }

    /// The device class behind an IMEI, if the device DB knows it.
    ///
    /// IMEIs present in the store at construction time are answered from
    /// the cache; anything else falls back to a live device-DB lookup, so
    /// a context built over an empty store (the streaming engine's case —
    /// records arrive after construction) classifies identically to a
    /// batch context built over the full store.
    pub fn device_class(&self, imei: u64) -> Option<DeviceClass> {
        match self.class_by_imei.get(&imei) {
            Some(class) => *class,
            None => Imei::from_u64(imei)
                .ok()
                .and_then(|i| self.db.lookup(i))
                .map(|r| r.class),
        }
    }

    /// `true` if this proxy record was issued by a SIM-enabled wearable.
    pub fn is_wearable_record(&self, r: &ProxyRecord) -> bool {
        self.device_class(r.imei) == Some(DeviceClass::CellularWearable)
    }

    /// Users observed with a SIM-enabled wearable (the paper's "users that
    /// have wearable devices").
    pub fn owners(&self) -> &HashSet<UserId> {
        &self.owners
    }

    /// All users observed in the detailed logs.
    pub fn all_users(&self) -> &HashSet<UserId> {
        &self.all_users
    }

    /// Proxy records issued by SIM-enabled wearables.
    pub fn wearable_proxy(&self) -> impl Iterator<Item = &'a ProxyRecord> + '_ {
        self.store
            .proxy()
            .iter()
            .filter(move |r| self.device_class(r.imei) == Some(DeviceClass::CellularWearable))
    }

    /// Proxy records issued by smartphones.
    pub fn phone_proxy(&self) -> impl Iterator<Item = &'a ProxyRecord> + '_ {
        self.store
            .proxy()
            .iter()
            .filter(move |r| self.device_class(r.imei) == Some(DeviceClass::Smartphone))
    }

    /// Number of whole weeks in the detailed window (averaging denominator).
    pub fn detail_weeks(&self) -> f64 {
        (self.window.detailed().num_whole_weeks() as f64).max(1.0)
    }

    /// Number of days in the detailed window.
    pub fn detail_days(&self) -> f64 {
        (self.window.detailed().num_days() as f64).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wearscope_simtime::SimTime;
    use wearscope_trace::{MmeEvent, MmeRecord, Scheme};

    fn proxy(user: u64, imei: u64, host: &str, t: u64) -> ProxyRecord {
        ProxyRecord {
            timestamp: SimTime::from_secs(t),
            user: UserId(user),
            imei,
            host: host.into(),
            scheme: Scheme::Https,
            bytes_down: 1000,
            bytes_up: 100,
        }
    }

    #[test]
    fn indexes_devices_and_owners() {
        let db = DeviceDb::standard();
        let catalog = AppCatalog::standard();
        let sectors = SectorDirectory::new();
        let w_imei = db.example_imei(db.wearable_tacs()[0], 1).as_u64();
        let p_tac = db.tacs_of_class(DeviceClass::Smartphone)[0];
        let p_imei = db.example_imei(p_tac, 2).as_u64();
        let store = TraceStore::from_records(
            vec![
                proxy(1, w_imei, "api.weather.com", 10),
                proxy(1, p_imei, "m.popular-video.example", 20),
                proxy(2, p_imei, "m.popular-video.example", 30),
            ],
            vec![MmeRecord {
                timestamp: SimTime::from_secs(5),
                user: UserId(3),
                imei: w_imei,
                event: MmeEvent::Attach,
                sector: 0,
            }],
        );
        let ctx = StudyContext::new(
            &store,
            &db,
            &sectors,
            &catalog,
            ObservationWindow::compact(),
        );
        assert_eq!(
            ctx.device_class(w_imei),
            Some(DeviceClass::CellularWearable)
        );
        assert_eq!(ctx.device_class(p_imei), Some(DeviceClass::Smartphone));
        assert_eq!(ctx.device_class(42), None);
        assert_eq!(ctx.all_users().len(), 3);
        assert!(ctx.owners().contains(&UserId(1)));
        assert!(ctx.owners().contains(&UserId(3))); // seen via MME
        assert!(!ctx.owners().contains(&UserId(2)));
        assert_eq!(ctx.wearable_proxy().count(), 1);
        assert_eq!(ctx.phone_proxy().count(), 2);
    }

    #[test]
    fn empty_store_is_fine() {
        let db = DeviceDb::standard();
        let catalog = AppCatalog::standard();
        let sectors = SectorDirectory::new();
        let store = TraceStore::new();
        let ctx = StudyContext::new(
            &store,
            &db,
            &sectors,
            &catalog,
            ObservationWindow::compact(),
        );
        assert!(ctx.owners().is_empty());
        assert!(ctx.all_users().is_empty());
        assert_eq!(ctx.wearable_proxy().count(), 0);
    }

    #[test]
    fn device_class_falls_back_to_db_on_cache_miss() {
        // The streaming engine builds its context over an empty store and
        // classifies records as they arrive — the uncached path must agree
        // with the cached one.
        let db = DeviceDb::standard();
        let catalog = AppCatalog::standard();
        let sectors = SectorDirectory::new();
        let store = TraceStore::new();
        let ctx = StudyContext::new(
            &store,
            &db,
            &sectors,
            &catalog,
            ObservationWindow::compact(),
        );
        let w_imei = db.example_imei(db.wearable_tacs()[0], 1).as_u64();
        assert_eq!(
            ctx.device_class(w_imei),
            Some(DeviceClass::CellularWearable)
        );
        assert_eq!(ctx.device_class(42), None); // invalid IMEI stays unknown
    }
}
