//! Property-based tests for the analysis pipeline's invariants.

use proptest::prelude::*;

use wearscope_appdb::AppId;
use wearscope_core::sessions::{sessionize, AttributedTx, SESSION_GAP_SECS};
use wearscope_core::stats::{self, Ecdf};
use wearscope_simtime::SimTime;
use wearscope_trace::UserId;

fn arb_attributed() -> impl Strategy<Value = Vec<AttributedTx>> {
    prop::collection::vec(
        (
            0u64..5,                   // user
            0u64..200_000,             // time
            prop::option::of(0u16..6), // app
            any::<bool>(),
            1u64..100_000, // bytes
        ),
        0..120,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .map(|(u, t, app, fp, bytes)| AttributedTx {
                user: UserId(u),
                timestamp: SimTime::from_secs(t),
                app: app.map(AppId),
                first_party: fp,
                bytes,
            })
            .collect()
    })
}

proptest! {
    /// Sessionization invariants: transactions and bytes are conserved for
    /// attributed traffic; intra-session gaps < 60 s; sessions of the same
    /// (user, app) are ≥ 60 s apart; start ≤ end.
    #[test]
    fn sessionize_invariants(txs in arb_attributed()) {
        let sessions = sessionize(&txs);
        let attributed_tx = txs.iter().filter(|t| t.app.is_some()).count() as u64;
        let attributed_bytes: u64 = txs.iter().filter(|t| t.app.is_some()).map(|t| t.bytes).sum();
        let session_tx: u64 = sessions.iter().map(|s| s.transactions).sum();
        let session_bytes: u64 = sessions.iter().map(|s| s.bytes).sum();
        prop_assert_eq!(session_tx, attributed_tx);
        prop_assert_eq!(session_bytes, attributed_bytes);
        for s in &sessions {
            prop_assert!(s.start <= s.end);
            prop_assert!(s.transactions >= 1);
        }
        // Per (user, app): consecutive sessions separated by ≥ gap.
        use std::collections::HashMap;
        let mut by_key: HashMap<(UserId, AppId), Vec<&wearscope_core::sessions::Session>> =
            HashMap::new();
        for s in &sessions {
            by_key.entry((s.user, s.app)).or_default().push(s);
        }
        for group in by_key.values_mut() {
            group.sort_by_key(|s| s.start);
            for w in group.windows(2) {
                let gap = (w[1].start - w[0].end).as_secs();
                prop_assert!(
                    gap >= SESSION_GAP_SECS,
                    "sessions only {gap}s apart"
                );
            }
        }
    }

    /// Ecdf laws: quantile is monotone in q, fraction_below monotone in x,
    /// mean within [min, max], and fractions consistent with quantiles.
    #[test]
    fn ecdf_laws(samples in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let e = Ecdf::from_samples(samples.clone());
        prop_assert_eq!(e.len(), samples.len());
        prop_assert!(e.mean() >= e.min() - 1e-9);
        prop_assert!(e.mean() <= e.max() + 1e-9);
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=10 {
            let q = e.quantile(i as f64 / 10.0);
            prop_assert!(q >= prev);
            prev = q;
        }
        prop_assert!(e.fraction_below(e.min()) == 0.0);
        prop_assert!((e.fraction_at_or_below(e.max()) - 1.0).abs() < 1e-12);
        // fraction_below is monotone.
        let xs = [e.quantile(0.25), e.quantile(0.5), e.quantile(0.75)];
        prop_assert!(e.fraction_below(xs[0]) <= e.fraction_below(xs[1]));
        prop_assert!(e.fraction_below(xs[1]) <= e.fraction_below(xs[2]));
    }

    /// Entropy: bounded by ln(n), scale-invariant, maximal for uniform.
    #[test]
    fn entropy_laws(weights in prop::collection::vec(0.0f64..1e6, 1..30), scale in 0.1f64..1000.0) {
        let h = stats::shannon_entropy(&weights);
        let positive = weights.iter().filter(|w| **w > 0.0).count();
        prop_assert!(h >= -1e-12);
        if positive > 0 {
            prop_assert!(h <= (positive as f64).ln() + 1e-9, "h {h} over ln({positive})");
        }
        let scaled: Vec<f64> = weights.iter().map(|w| w * scale).collect();
        let hs = stats::shannon_entropy(&scaled);
        prop_assert!((h - hs).abs() < 1e-9, "scale variance: {h} vs {hs}");
    }

    /// Correlations live in [-1, 1] and are symmetric.
    #[test]
    fn correlation_bounds(
        pairs in prop::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 2..100),
    ) {
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let r = stats::pearson(&xs, &ys);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r), "r {r}");
        prop_assert!((r - stats::pearson(&ys, &xs)).abs() < 1e-12);
        let rho = stats::spearman(&xs, &ys);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&rho));
        // Perfect self-correlation.
        prop_assert!((stats::pearson(&xs, &xs) - 1.0).abs() < 1e-9 || xs.iter().all(|&x| x == xs[0]));
    }

    /// normalize_sum returns a distribution; normalize_max peaks at 1.
    #[test]
    fn normalization_laws(values in prop::collection::vec(0.0f64..1e9, 1..50)) {
        let any_positive = values.iter().any(|v| *v > 0.0);
        let ns = stats::normalize_sum(&values);
        let nm = stats::normalize_max(&values);
        if any_positive {
            prop_assert!((ns.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            let max = nm.iter().cloned().fold(0.0_f64, f64::max);
            prop_assert!((max - 1.0).abs() < 1e-9);
        } else {
            prop_assert!(ns.iter().all(|v| *v == 0.0));
        }
        prop_assert!(ns.iter().all(|v| (0.0..=1.0 + 1e-12).contains(v)));
    }

    /// stable_sum equals the naive sum up to float tolerance and is exactly
    /// permutation-invariant.
    #[test]
    fn stable_sum_permutation_invariant(values in prop::collection::vec(-1e9f64..1e9, 0..60)) {
        let a = stats::stable_sum(values.clone());
        let mut rev = values.clone();
        rev.reverse();
        prop_assert_eq!(a, stats::stable_sum(rev));
        let naive: f64 = values.iter().sum();
        prop_assert!((a - naive).abs() <= 1e-6 * naive.abs().max(1.0));
    }
}
