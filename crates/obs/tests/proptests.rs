//! Property tests for the `Mergeable`-style contract of [`Snapshot::merge`]:
//! commutative, associative, identity — the same laws the core partial
//! aggregates rely on for shard-order-independent folds.

use proptest::prelude::*;
use wearscope_obs::{HistogramSnapshot, Snapshot, StageSnapshot};

/// A small fixed key space so generated snapshots collide on names, which
/// is the interesting merge path.
const KEYS: [&str; 4] = [
    "ingest.kept",
    "ingest.seen",
    "stream.emitted",
    "trace.bytes",
];

/// Shared histogram bounds: merge requires identical bounds per name.
const BOUNDS: [u64; 3] = [10, 100, 1000];

#[allow(clippy::type_complexity)]
fn arb_snapshot() -> impl Strategy<Value = Snapshot> {
    (
        prop::collection::vec((0usize..4, 0u64..1_000), 0..8),
        prop::collection::vec((0usize..4, -100i64..100), 0..8),
        prop::collection::vec((0usize..4, prop::collection::vec(0u64..2_000, 0..6)), 0..4),
        prop::collection::vec((0usize..4, 1u64..4, 0u64..1_000_000), 0..6),
    )
        .prop_map(|(counters, gauges, hists, stages)| {
            let mut s = Snapshot::default();
            for (k, v) in counters {
                *s.counters.entry(KEYS[k].to_string()).or_insert(0) += v;
            }
            for (k, v) in gauges {
                s.gauges.insert(KEYS[k].to_string(), v);
            }
            for (k, observations) in hists {
                let h =
                    s.histograms
                        .entry(KEYS[k].to_string())
                        .or_insert_with(|| HistogramSnapshot {
                            bounds: BOUNDS.to_vec(),
                            counts: vec![0; BOUNDS.len() + 1],
                            count: 0,
                            sum: 0,
                        });
                for v in observations {
                    let idx = BOUNDS.partition_point(|&b| b < v);
                    h.counts[idx] += 1;
                    h.count += 1;
                    h.sum += v;
                }
            }
            for (k, count, total_ns) in stages {
                match s.timing.stages.iter_mut().find(|st| st.path == KEYS[k]) {
                    Some(st) => {
                        st.count += count;
                        st.total_ns += total_ns;
                    }
                    None => s.timing.stages.push(StageSnapshot {
                        path: KEYS[k].to_string(),
                        count,
                        total_ns,
                    }),
                }
            }
            s
        })
}

/// Stage order is first-seen, so `a.merge(b)` and `b.merge(a)` may list
/// disjoint paths in different orders; normalize before comparing.
fn normalized(mut s: Snapshot) -> Snapshot {
    s.timing.stages.sort_by(|a, b| a.path.cmp(&b.path));
    s
}

proptest! {
    /// merge is commutative (up to stage listing order).
    #[test]
    fn merge_commutes(a in arb_snapshot(), b in arb_snapshot()) {
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(normalized(ab), normalized(ba));
    }

    /// merge is associative.
    #[test]
    fn merge_is_associative(a in arb_snapshot(), b in arb_snapshot(), c in arb_snapshot()) {
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(normalized(left), normalized(right));
    }

    /// Snapshot::default() is a two-sided identity.
    #[test]
    fn merge_identity(a in arb_snapshot()) {
        let mut left = Snapshot::default();
        left.merge(&a);
        let mut right = a.clone();
        right.merge(&Snapshot::default());
        prop_assert_eq!(normalized(left), normalized(a.clone()));
        prop_assert_eq!(normalized(right), normalized(a));
    }

    /// JSON serialization is a pure function of the snapshot: merging in
    /// either order yields byte-identical JSON after normalization.
    #[test]
    fn merged_json_is_order_independent(a in arb_snapshot(), b in arb_snapshot()) {
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(normalized(ab).to_json(), normalized(ba).to_json());
    }
}
