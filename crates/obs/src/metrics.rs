//! The three metric primitives: [`Counter`], [`Gauge`], [`Histogram`].
//!
//! All three are thin handles around atomics shared through an `Arc`, so a
//! handle can be cloned into every shard worker and updated without locks.
//! Loads/stores use `Relaxed` ordering: metrics are monotone accumulators
//! read only after the work they observe has been joined, so no ordering
//! beyond atomicity is required.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing `u64` counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed gauge: a value that can move both ways (open windows, watermark
/// position, queue depth).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add a (possibly negative) delta.
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Raise the gauge to `v` if `v` is larger (peak tracking).
    pub fn set_max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
pub(crate) struct HistogramInner {
    /// Inclusive upper bounds, strictly increasing. An implicit overflow
    /// bucket (`+inf`) always exists, so `counts.len() == bounds.len() + 1`.
    pub(crate) bounds: Vec<u64>,
    pub(crate) counts: Vec<AtomicU64>,
    pub(crate) count: AtomicU64,
    pub(crate) sum: AtomicU64,
}

/// A fixed-bucket histogram over `u64` observations.
///
/// Buckets are defined by inclusive upper bounds chosen at registration:
/// an observation `v` lands in the first bucket whose bound is `>= v`, or
/// in the implicit overflow bucket when `v` exceeds every bound.
#[derive(Clone, Debug)]
pub struct Histogram(pub(crate) Arc<HistogramInner>);

impl Histogram {
    /// Build a histogram with the given inclusive upper bounds.
    ///
    /// Bounds must be strictly increasing; out-of-order or duplicate bounds
    /// are a programming error and panic.
    pub fn new(bounds: &[u64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing: {bounds:?}"
        );
        let counts = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram(Arc::new(HistogramInner {
            bounds: bounds.to_vec(),
            counts,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }

    /// Record one observation.
    pub fn observe(&self, v: u64) {
        let idx = self.0.bounds.partition_point(|&b| b < v);
        self.0.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// The configured inclusive upper bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.0.bounds
    }

    /// Per-bucket counts, overflow bucket last.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.0
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::default();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        // Clones share the cell.
        let c2 = c.clone();
        c2.inc();
        assert_eq!(c.get(), 43);

        let g = Gauge::default();
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
        g.set_max(10);
        g.set_max(2);
        assert_eq!(g.get(), 10);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        // Bounds are inclusive upper bounds: 0..=10 | 11..=100 | 101..
        let h = Histogram::new(&[10, 100]);
        h.observe(0); // first bucket (<= 10)
        h.observe(10); // first bucket, exactly on the bound
        h.observe(11); // second bucket, just past the bound
        h.observe(100); // second bucket, exactly on the bound
        h.observe(101); // overflow bucket
        h.observe(u64::MAX); // overflow bucket
        assert_eq!(h.bucket_counts(), vec![2, 2, 2]);
        assert_eq!(h.count(), 6);
        // The sum accumulator wraps on overflow, like any fetch_add.
        assert_eq!(h.sum(), u64::MAX.wrapping_add(10 + 11 + 100 + 101));
    }

    #[test]
    fn histogram_single_bound_and_empty_bounds() {
        let h = Histogram::new(&[5]);
        h.observe(5);
        h.observe(6);
        assert_eq!(h.bucket_counts(), vec![1, 1]);

        // No bounds: everything lands in the lone overflow bucket.
        let h = Histogram::new(&[]);
        h.observe(0);
        h.observe(123);
        assert_eq!(h.bucket_counts(), vec![2]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        Histogram::new(&[10, 10]);
    }

    #[test]
    fn histogram_shared_across_threads() {
        let h = Histogram::new(&[100]);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let h = h.clone();
                s.spawn(move || {
                    for v in 0..1000u64 {
                        h.observe(v);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
        assert_eq!(h.bucket_counts(), vec![4 * 101, 4 * 899]);
    }
}
