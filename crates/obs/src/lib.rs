//! Pipeline observability for `wearscope`.
//!
//! The paper's measurement infrastructure could only characterize wearable
//! traffic because every vantage point (MME, transparent proxy) exported
//! counters alongside its logs. This crate gives our own pipeline the same
//! property: a zero-dependency metrics layer that every stage — synthpop
//! generation, sharded ingest, the stream runtime, trace I/O — reports into,
//! and that the CLI can snapshot to a deterministic JSON file.
//!
//! ## Model
//!
//! A [`Registry`] hands out named [`Counter`], [`Gauge`], and [`Histogram`]
//! handles. Handles are cheap clones around atomics: registering the same
//! name twice returns a handle to the same underlying cell, so shards on
//! different threads can increment the same counter without coordination.
//!
//! Metrics live in one of two sections:
//!
//! * **deterministic** — values that must be bit-identical across worker
//!   counts and across runs with the same seed (records seen, kept,
//!   quarantined per reason, bytes read, windows emitted, ...). Registered
//!   via [`Registry::counter`] / [`Registry::gauge`] / [`Registry::histogram`].
//! * **timing** — wall-clock durations, per-shard breakdowns, and anything
//!   else that legitimately varies run-to-run. Registered via
//!   [`Registry::timing_counter`] / [`Registry::timing_gauge`] /
//!   [`Registry::timing_histogram`], and recorded by [`Span`]s.
//!
//! [`Registry::snapshot`] freezes everything into a [`Snapshot`] whose JSON
//! form ([`Snapshot::to_json`]) has sorted keys and the `timing` section
//! *last*, so determinism gates can strip it with a one-line filter and
//! byte-compare the rest.
//!
//! ## Stage tracing
//!
//! [`Registry::stage`] opens a wall-clock [`Span`]; [`Span::child`] nests.
//! Spans record into the timing section on drop, keyed by their
//! slash-separated path (`"analyze/load"`), preserving first-seen order so
//! reports can render the stage tree in execution order.
//!
//! ## Merging
//!
//! [`Snapshot::merge`] follows the same contract as the `Mergeable` partial
//! aggregates in `wearscope-core`: commutative and associative with
//! [`Snapshot::default`] as the identity (counters and histogram buckets
//! sum, gauges take the max, stage accumulators sum per path).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod metrics;
pub mod registry;
pub mod snapshot;

pub use metrics::{Counter, Gauge, Histogram};
pub use registry::{Registry, Span};
pub use snapshot::{HistogramSnapshot, Snapshot, StageSnapshot, TimingSnapshot};
