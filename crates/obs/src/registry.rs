//! The [`Registry`]: named metric registration and wall-clock [`Span`]s.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::metrics::{Counter, Gauge, Histogram};
use crate::snapshot::{HistogramSnapshot, Snapshot, StageSnapshot, TimingSnapshot};

/// Accumulated wall-clock time for one stage path.
#[derive(Debug)]
struct StageAccum {
    /// First-seen order, so reports can render stages in execution order.
    seq: usize,
    count: u64,
    total_ns: u64,
}

#[derive(Debug, Default)]
struct Section {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl Section {
    fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock().unwrap();
        map.entry(name.to_string()).or_default().clone()
    }

    fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.gauges.lock().unwrap();
        map.entry(name.to_string()).or_default().clone()
    }

    fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        let mut map = self.histograms.lock().unwrap();
        map.entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .clone()
    }

    fn snapshot_into(
        &self,
    ) -> (
        BTreeMap<String, u64>,
        BTreeMap<String, i64>,
        BTreeMap<String, HistogramSnapshot>,
    ) {
        let counters = self
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| {
                (
                    k.clone(),
                    HistogramSnapshot {
                        bounds: v.bounds().to_vec(),
                        counts: v.bucket_counts(),
                        count: v.count(),
                        sum: v.sum(),
                    },
                )
            })
            .collect();
        (counters, gauges, histograms)
    }
}

#[derive(Debug, Default)]
struct Inner {
    /// Deterministic section: must be bit-identical across worker counts.
    main: Section,
    /// Timing section: wall-clock and layout-dependent values, excluded
    /// from determinism gates.
    timing: Section,
    stages: Mutex<BTreeMap<String, StageAccum>>,
}

/// A handle to a set of named metrics, cheap to clone and share across
/// threads. See the crate docs for the deterministic-vs-timing split.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create a counter in the **deterministic** section.
    pub fn counter(&self, name: &str) -> Counter {
        self.inner.main.counter(name)
    }

    /// Get or create a gauge in the **deterministic** section.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.inner.main.gauge(name)
    }

    /// Get or create a histogram in the **deterministic** section.
    ///
    /// Bounds are fixed by the first registration; later calls with the
    /// same name return the existing histogram regardless of `bounds`.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        self.inner.main.histogram(name, bounds)
    }

    /// Get or create a counter in the **timing** section.
    pub fn timing_counter(&self, name: &str) -> Counter {
        self.inner.timing.counter(name)
    }

    /// Get or create a gauge in the **timing** section.
    pub fn timing_gauge(&self, name: &str) -> Gauge {
        self.inner.timing.gauge(name)
    }

    /// Get or create a histogram in the **timing** section.
    pub fn timing_histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        self.inner.timing.histogram(name, bounds)
    }

    /// Open a root wall-clock span named `name`. Time is recorded into the
    /// timing section when the span drops.
    pub fn stage(&self, name: &str) -> Span {
        Span {
            registry: self.clone(),
            path: name.to_string(),
            start: Instant::now(),
        }
    }

    fn record_stage(&self, path: &str, elapsed: Duration) {
        let mut stages = self.inner.stages.lock().unwrap();
        let next_seq = stages.len();
        let acc = stages.entry(path.to_string()).or_insert(StageAccum {
            seq: next_seq,
            count: 0,
            total_ns: 0,
        });
        acc.count += 1;
        acc.total_ns = acc.total_ns.saturating_add(elapsed.as_nanos() as u64);
    }

    /// Freeze every metric into a [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        let (counters, gauges, histograms) = self.inner.main.snapshot_into();
        let (t_counters, t_gauges, t_histograms) = self.inner.timing.snapshot_into();
        let mut stages: Vec<(usize, StageSnapshot)> = self
            .inner
            .stages
            .lock()
            .unwrap()
            .iter()
            .map(|(path, acc)| {
                (
                    acc.seq,
                    StageSnapshot {
                        path: path.clone(),
                        count: acc.count,
                        total_ns: acc.total_ns,
                    },
                )
            })
            .collect();
        stages.sort_by_key(|(seq, _)| *seq);
        Snapshot {
            counters,
            gauges,
            histograms,
            timing: TimingSnapshot {
                counters: t_counters,
                gauges: t_gauges,
                histograms: t_histograms,
                stages: stages.into_iter().map(|(_, s)| s).collect(),
            },
        }
    }
}

/// An RAII wall-clock span. Records its elapsed time under its
/// slash-separated path when dropped; nest with [`Span::child`].
#[derive(Debug)]
pub struct Span {
    registry: Registry,
    path: String,
    start: Instant,
}

impl Span {
    /// Open a child span whose path is `"{parent}/{name}"`.
    pub fn child(&self, name: &str) -> Span {
        Span {
            registry: self.registry.clone(),
            path: format!("{}/{}", self.path, name),
            start: Instant::now(),
        }
    }

    /// The slash-separated stage path of this span.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Close the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        self.registry.record_stage(&self.path, elapsed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_shares_the_cell() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.add(2);
        b.inc();
        assert_eq!(reg.counter("x").get(), 3);
        // Deterministic and timing sections are separate namespaces.
        reg.timing_counter("x").add(10);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["x"], 3);
        assert_eq!(snap.timing.counters["x"], 10);
    }

    #[test]
    fn spans_nest_and_preserve_first_seen_order() {
        let reg = Registry::new();
        {
            let root = reg.stage("analyze");
            {
                let load = root.child("load");
                let _shard = load.child("shard");
            }
            root.child("fold").finish();
        }
        // Run "analyze" a second time: counts accumulate, order is stable.
        reg.stage("analyze").finish();
        let snap = reg.snapshot();
        let paths: Vec<&str> = snap.timing.stages.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(
            paths,
            vec![
                "analyze/load/shard",
                "analyze/load",
                "analyze/fold",
                "analyze"
            ]
        );
        let analyze = snap
            .timing
            .stages
            .iter()
            .find(|s| s.path == "analyze")
            .unwrap();
        assert_eq!(analyze.count, 2);
    }

    #[test]
    fn registry_clones_share_state() {
        let reg = Registry::new();
        let reg2 = reg.clone();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let r = reg2.clone();
                s.spawn(move || r.counter("hits").add(100));
            }
        });
        assert_eq!(reg.counter("hits").get(), 400);
    }
}
