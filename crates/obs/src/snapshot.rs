//! Frozen metric snapshots: merge semantics and deterministic JSON.

use std::collections::BTreeMap;
use std::fmt::Write;

/// A frozen histogram: bounds, per-bucket counts (overflow last), total
/// count, and sum of observations.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds, strictly increasing.
    pub bounds: Vec<u64>,
    /// Per-bucket counts; `counts.len() == bounds.len() + 1` (overflow last).
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations (wrapping).
    pub sum: u64,
}

/// Accumulated wall-clock time for one stage path, in execution order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StageSnapshot {
    /// Slash-separated stage path (`"analyze/load"`).
    pub path: String,
    /// Number of times the span ran.
    pub count: u64,
    /// Total wall-clock nanoseconds across all runs.
    pub total_ns: u64,
}

/// The timing section of a snapshot: everything that legitimately varies
/// run-to-run (wall clock, per-shard layout), excluded from determinism
/// gates.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TimingSnapshot {
    /// Timing-section counters.
    pub counters: BTreeMap<String, u64>,
    /// Timing-section gauges.
    pub gauges: BTreeMap<String, i64>,
    /// Timing-section histograms.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Stage spans in first-seen order.
    pub stages: Vec<StageSnapshot>,
}

/// A frozen view of a whole [`Registry`](crate::Registry).
///
/// The deterministic maps (`counters`, `gauges`, `histograms`) must be
/// bit-identical across worker counts for the same input; everything that
/// cannot promise that lives under [`Snapshot::timing`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Deterministic counters.
    pub counters: BTreeMap<String, u64>,
    /// Deterministic gauges.
    pub gauges: BTreeMap<String, i64>,
    /// Deterministic histograms.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// The run-varying section, serialized last.
    pub timing: TimingSnapshot,
}

impl Snapshot {
    /// Merge `other` into `self`.
    ///
    /// Mirrors the `Mergeable` contract of the core partial aggregates:
    /// commutative and associative, with `Snapshot::default()` as the
    /// identity. Counters and histogram buckets sum; gauges take the max
    /// (a merged gauge reads as the peak across parts); stage accumulators
    /// sum per path, with paths unknown to `self` appended in `other`'s
    /// order.
    ///
    /// Histograms with the same name must have identical bounds; merging
    /// mismatched bounds is a configuration error and panics.
    pub fn merge(&mut self, other: &Snapshot) {
        merge_counters(&mut self.counters, &other.counters);
        merge_gauges(&mut self.gauges, &other.gauges);
        merge_histograms(&mut self.histograms, &other.histograms);
        merge_counters(&mut self.timing.counters, &other.timing.counters);
        merge_gauges(&mut self.timing.gauges, &other.timing.gauges);
        merge_histograms(&mut self.timing.histograms, &other.timing.histograms);
        for stage in &other.timing.stages {
            match self.timing.stages.iter_mut().find(|s| s.path == stage.path) {
                Some(s) => {
                    s.count += stage.count;
                    s.total_ns = s.total_ns.saturating_add(stage.total_ns);
                }
                None => self.timing.stages.push(stage.clone()),
            }
        }
    }

    /// Serialize to pretty-printed JSON with two-space indent.
    ///
    /// Keys are emitted in sorted order within every object, and the
    /// top-level key order is `counters`, `gauges`, `histograms`, `timing`
    /// — alphabetical, with `timing` last, so a determinism gate can strip
    /// the timing section by cutting at the `"timing"` line and
    /// byte-compare the rest.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        write_u64_map(&mut out, 1, "counters", &self.counters);
        out.push_str(",\n");
        write_i64_map(&mut out, 1, "gauges", &self.gauges);
        out.push_str(",\n");
        write_hist_map(&mut out, 1, "histograms", &self.histograms);
        out.push_str(",\n");
        // Timing object: sorted keys with "stages" last (s > h > g > c).
        push_indent(&mut out, 1);
        out.push_str("\"timing\": {\n");
        write_u64_map(&mut out, 2, "counters", &self.timing.counters);
        out.push_str(",\n");
        write_i64_map(&mut out, 2, "gauges", &self.timing.gauges);
        out.push_str(",\n");
        write_hist_map(&mut out, 2, "histograms", &self.timing.histograms);
        out.push_str(",\n");
        push_indent(&mut out, 2);
        out.push_str("\"stages\": [");
        for (i, stage) in self.timing.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            push_indent(&mut out, 3);
            let _ = write!(
                out,
                "{{\"path\": {}, \"count\": {}, \"total_ns\": {}}}",
                json_string(&stage.path),
                stage.count,
                stage.total_ns
            );
        }
        if !self.timing.stages.is_empty() {
            out.push('\n');
            push_indent(&mut out, 2);
        }
        out.push_str("]\n");
        push_indent(&mut out, 1);
        out.push_str("}\n");
        out.push_str("}\n");
        out
    }
}

fn merge_counters(dst: &mut BTreeMap<String, u64>, src: &BTreeMap<String, u64>) {
    for (k, v) in src {
        *dst.entry(k.clone()).or_insert(0) += v;
    }
}

fn merge_gauges(dst: &mut BTreeMap<String, i64>, src: &BTreeMap<String, i64>) {
    for (k, v) in src {
        let slot = dst.entry(k.clone()).or_insert(i64::MIN);
        *slot = (*slot).max(*v);
    }
}

fn merge_histograms(
    dst: &mut BTreeMap<String, HistogramSnapshot>,
    src: &BTreeMap<String, HistogramSnapshot>,
) {
    for (k, v) in src {
        match dst.get_mut(k) {
            Some(d) => {
                assert_eq!(
                    d.bounds, v.bounds,
                    "histogram {k:?} merged with mismatched bounds"
                );
                for (a, b) in d.counts.iter_mut().zip(&v.counts) {
                    *a += b;
                }
                d.count += v.count;
                d.sum = d.sum.wrapping_add(v.sum);
            }
            None => {
                dst.insert(k.clone(), v.clone());
            }
        }
    }
}

fn push_indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn write_u64_map(out: &mut String, depth: usize, name: &str, map: &BTreeMap<String, u64>) {
    push_indent(out, depth);
    let _ = write!(out, "\"{name}\": {{");
    write_scalar_entries(out, depth, map.iter().map(|(k, v)| (k, v.to_string())));
    out.push('}');
}

fn write_i64_map(out: &mut String, depth: usize, name: &str, map: &BTreeMap<String, i64>) {
    push_indent(out, depth);
    let _ = write!(out, "\"{name}\": {{");
    write_scalar_entries(out, depth, map.iter().map(|(k, v)| (k, v.to_string())));
    out.push('}');
}

fn write_scalar_entries<'a>(
    out: &mut String,
    depth: usize,
    entries: impl Iterator<Item = (&'a String, String)>,
) {
    let mut any = false;
    for (i, (k, v)) in entries.enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        push_indent(out, depth + 1);
        let _ = write!(out, "{}: {}", json_string(k), v);
        any = true;
    }
    if any {
        out.push('\n');
        push_indent(out, depth);
    }
}

fn write_hist_map(
    out: &mut String,
    depth: usize,
    name: &str,
    map: &BTreeMap<String, HistogramSnapshot>,
) {
    push_indent(out, depth);
    let _ = write!(out, "\"{name}\": {{");
    let mut any = false;
    for (i, (k, h)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        push_indent(out, depth + 1);
        let _ = write!(
            out,
            "{}: {{\"bounds\": {:?}, \"count\": {}, \"counts\": {:?}, \"sum\": {}}}",
            json_string(k),
            h.bounds,
            h.count,
            h.counts,
            h.sum
        );
        any = true;
    }
    if any {
        out.push('\n');
        push_indent(out, depth);
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut s = Snapshot::default();
        s.counters.insert("ingest.kept".into(), 90);
        s.counters.insert("ingest.seen".into(), 100);
        s.gauges.insert("stream.open_windows".into(), 3);
        s.histograms.insert(
            "stream.window_events".into(),
            HistogramSnapshot {
                bounds: vec![10, 100],
                counts: vec![1, 2, 0],
                count: 3,
                sum: 57,
            },
        );
        s.timing.counters.insert("ingest.shards".into(), 4);
        s.timing.stages.push(StageSnapshot {
            path: "analyze/load".into(),
            count: 1,
            total_ns: 1234,
        });
        s
    }

    #[test]
    fn json_is_sorted_and_timing_last() {
        let json = sample().to_json();
        let counters = json.find("\"counters\"").unwrap();
        let gauges = json.find("\"gauges\"").unwrap();
        let histograms = json.find("\"histograms\"").unwrap();
        let timing = json.find("\"timing\"").unwrap();
        assert!(counters < gauges && gauges < histograms && histograms < timing);
        // Sorted keys within a map.
        assert!(json.find("ingest.kept").unwrap() < json.find("ingest.seen").unwrap());
        // The timing key sits at top-level indent, strippable by line.
        assert!(json.contains("\n  \"timing\": {"));
    }

    #[test]
    fn json_of_empty_snapshot_is_stable() {
        let json = Snapshot::default().to_json();
        assert_eq!(
            json,
            "{\n  \"counters\": {},\n  \"gauges\": {},\n  \"histograms\": {},\n  \"timing\": {\n    \"counters\": {},\n    \"gauges\": {},\n    \"histograms\": {},\n    \"stages\": []\n  }\n}\n"
        );
    }

    #[test]
    fn merge_identity_and_sums() {
        let mut a = sample();
        a.merge(&Snapshot::default());
        assert_eq!(a, sample());

        let mut b = Snapshot::default();
        b.merge(&sample());
        b.merge(&sample());
        assert_eq!(b.counters["ingest.seen"], 200);
        assert_eq!(b.gauges["stream.open_windows"], 3); // max, not sum
        assert_eq!(b.histograms["stream.window_events"].counts, vec![2, 4, 0]);
        assert_eq!(b.timing.stages[0].count, 2);
    }

    #[test]
    #[should_panic(expected = "mismatched bounds")]
    fn merge_rejects_mismatched_histogram_bounds() {
        let mut a = sample();
        let mut other = sample();
        other
            .histograms
            .get_mut("stream.window_events")
            .unwrap()
            .bounds = vec![1];
        a.merge(&other);
    }
}
