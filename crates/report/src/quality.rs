//! Data-quality accounting for quarantine-and-degrade ingestion.
//!
//! Operational cellular logs are never clean: truncated tails, bit flips,
//! duplicated or reordered records, devices missing from the TAC database.
//! Instead of failing the whole run on the first bad byte, the resilient
//! loader quarantines individual records with a typed
//! [`QuarantineReason`] and degrades gracefully; this module is the ledger
//! it reports against — how many records were seen, kept, and dropped per
//! reason, plus any shards that failed outright.

use core::fmt;

use crate::ingest::ShardSource;
use crate::table::Table;

/// Why one record was quarantined instead of analyzed.
///
/// Reasons are checked in a fixed order (parse first, then content), so a
/// record with several defects always gets the same reason regardless of
/// shard layout or worker count — the determinism contract of the
/// quarantine path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QuarantineReason {
    /// The line ended before the schema was complete (file truncation or a
    /// lost fragment).
    Truncated,
    /// A field failed to parse, the line had extra fields, or an escape
    /// sequence was malformed (bit flips, garbage lines).
    BadField,
    /// An exact copy of an earlier record in the same log.
    Duplicate,
    /// The record's timestamp regresses behind the log's high-water mark
    /// (logs are written time-sorted; regressions indicate corruption).
    OutOfOrder,
    /// The timestamp lies beyond the observation horizon (clock skew).
    Skewed,
    /// The IMEI is not a structurally valid device identity (Luhn check
    /// failure — a device the TAC database could never resolve).
    UnknownImei,
}

impl QuarantineReason {
    /// Every reason, in check order.
    pub const ALL: [QuarantineReason; 6] = [
        QuarantineReason::Truncated,
        QuarantineReason::BadField,
        QuarantineReason::Duplicate,
        QuarantineReason::OutOfOrder,
        QuarantineReason::Skewed,
        QuarantineReason::UnknownImei,
    ];

    /// Stable lowercase label (used in `quarantine.log` and tables).
    pub fn name(self) -> &'static str {
        match self {
            QuarantineReason::Truncated => "truncated",
            QuarantineReason::BadField => "bad-field",
            QuarantineReason::Duplicate => "duplicate",
            QuarantineReason::OutOfOrder => "out-of-order",
            QuarantineReason::Skewed => "skewed",
            QuarantineReason::UnknownImei => "unknown-imei",
        }
    }

    fn index(self) -> usize {
        match self {
            QuarantineReason::Truncated => 0,
            QuarantineReason::BadField => 1,
            QuarantineReason::Duplicate => 2,
            QuarantineReason::OutOfOrder => 3,
            QuarantineReason::Skewed => 4,
            QuarantineReason::UnknownImei => 5,
        }
    }
}

impl fmt::Display for QuarantineReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-reason quarantine counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QuarantineCounts {
    counts: [u64; QuarantineReason::ALL.len()],
}

impl QuarantineCounts {
    /// Records one quarantined record.
    pub fn note(&mut self, reason: QuarantineReason) {
        self.counts[reason.index()] += 1;
    }

    /// Count for one reason.
    pub fn get(&self, reason: QuarantineReason) -> u64 {
        self.counts[reason.index()]
    }

    /// Total quarantined records across all reasons.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `true` when nothing was quarantined.
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// Adds another counter set (e.g. the other log's).
    pub fn merge(&mut self, other: &QuarantineCounts) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }
}

/// One shard that could not be processed at all (worker panic or an I/O
/// error that survived the retry budget). The remaining shards still
/// complete; the load then fails with a typed error naming this shard.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardFailure {
    /// Which log the shard belonged to.
    pub source: ShardSource,
    /// Shard index within its source.
    pub shard: usize,
    /// `true` if the worker panicked (vs a persistent I/O error).
    pub panicked: bool,
    /// Human-readable failure detail.
    pub detail: String,
}

impl fmt::Display for ShardFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} shard {} {}: {}",
            self.source.name(),
            self.shard,
            if self.panicked { "panicked" } else { "failed" },
            self.detail
        )
    }
}

/// The data-quality section of an ingest run: records seen vs kept,
/// quarantine counts by reason, shard failures, and the error budget the
/// run was held to.
#[derive(Clone, Debug, Default)]
pub struct DataQuality {
    /// Non-blank log lines considered (kept + quarantined).
    pub records_seen: u64,
    /// Records that survived parse + validation and reached the analysis.
    pub records_kept: u64,
    /// Quarantined records by reason.
    pub quarantined: QuarantineCounts,
    /// Shards that failed outright (empty on a successful load).
    pub failed_shards: Vec<ShardFailure>,
    /// The `--max-error-rate` budget the run was checked against.
    pub max_error_rate: f64,
}

impl DataQuality {
    /// Fraction of seen records that were quarantined (0 for an empty run).
    pub fn quarantine_rate(&self) -> f64 {
        if self.records_seen == 0 {
            0.0
        } else {
            self.quarantined.total() as f64 / self.records_seen as f64
        }
    }

    /// Coverage: fraction of seen records kept (1 for an empty run).
    pub fn coverage(&self) -> f64 {
        if self.records_seen == 0 {
            1.0
        } else {
            self.records_kept as f64 / self.records_seen as f64
        }
    }

    /// Folds another quality section into this one (load + compute phases,
    /// or per-source sections).
    pub fn merge(&mut self, other: &DataQuality) {
        self.records_seen += other.records_seen;
        self.records_kept += other.records_kept;
        self.quarantined.merge(&other.quarantined);
        self.failed_shards
            .extend(other.failed_shards.iter().cloned());
        if other.max_error_rate > self.max_error_rate {
            self.max_error_rate = other.max_error_rate;
        }
    }

    /// One-line summary for log output.
    pub fn summary_line(&self) -> String {
        if self.quarantined.is_empty() && self.failed_shards.is_empty() {
            format!("kept all {} records (clean)", self.records_kept)
        } else {
            let mut by_reason: Vec<String> = Vec::new();
            for reason in QuarantineReason::ALL {
                let n = self.quarantined.get(reason);
                if n > 0 {
                    by_reason.push(format!("{n} {reason}"));
                }
            }
            format!(
                "kept {}/{} records ({:.2}% quarantined: {}; {} failed shards)",
                self.records_kept,
                self.records_seen,
                self.quarantine_rate() * 100.0,
                by_reason.join(", "),
                self.failed_shards.len(),
            )
        }
    }

    /// Per-reason table for verbose output.
    pub fn render_table(&self) -> String {
        let mut t = Table::new(vec!["reason", "records", "share of seen"]);
        for reason in QuarantineReason::ALL {
            let n = self.quarantined.get(reason);
            let share = if self.records_seen == 0 {
                0.0
            } else {
                n as f64 / self.records_seen as f64
            };
            t.row(vec![
                reason.name().into(),
                n.to_string(),
                format!("{:.4}%", share * 100.0),
            ]);
        }
        t.row(vec![
            "kept".into(),
            self.records_kept.to_string(),
            format!("{:.4}%", self.coverage() * 100.0),
        ]);
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_note_and_merge() {
        let mut a = QuarantineCounts::default();
        a.note(QuarantineReason::Truncated);
        a.note(QuarantineReason::Duplicate);
        a.note(QuarantineReason::Duplicate);
        let mut b = QuarantineCounts::default();
        b.note(QuarantineReason::UnknownImei);
        a.merge(&b);
        assert_eq!(a.get(QuarantineReason::Truncated), 1);
        assert_eq!(a.get(QuarantineReason::Duplicate), 2);
        assert_eq!(a.get(QuarantineReason::UnknownImei), 1);
        assert_eq!(a.total(), 4);
        assert!(!a.is_empty());
        assert!(QuarantineCounts::default().is_empty());
    }

    #[test]
    fn quality_rates_and_summary() {
        let mut q = DataQuality {
            records_seen: 1000,
            records_kept: 990,
            max_error_rate: 0.01,
            ..DataQuality::default()
        };
        for _ in 0..7 {
            q.quarantined.note(QuarantineReason::BadField);
        }
        for _ in 0..3 {
            q.quarantined.note(QuarantineReason::OutOfOrder);
        }
        assert!((q.quarantine_rate() - 0.01).abs() < 1e-12);
        assert!((q.coverage() - 0.99).abs() < 1e-12);
        let line = q.summary_line();
        assert!(line.contains("990/1000"), "{line}");
        assert!(line.contains("7 bad-field"), "{line}");
        let table = q.render_table();
        assert!(table.contains("out-of-order"), "{table}");
    }

    #[test]
    fn empty_quality_is_benign() {
        let q = DataQuality::default();
        assert_eq!(q.quarantine_rate(), 0.0);
        assert_eq!(q.coverage(), 1.0);
        assert!(q.summary_line().contains("clean"));
    }

    #[test]
    fn merge_folds_sections() {
        let mut a = DataQuality {
            records_seen: 10,
            records_kept: 9,
            max_error_rate: 0.01,
            ..DataQuality::default()
        };
        a.quarantined.note(QuarantineReason::Skewed);
        let mut b = DataQuality {
            records_seen: 5,
            records_kept: 4,
            max_error_rate: 0.02,
            ..DataQuality::default()
        };
        b.quarantined.note(QuarantineReason::Truncated);
        b.failed_shards.push(ShardFailure {
            source: ShardSource::Mme,
            shard: 3,
            panicked: true,
            detail: "boom".into(),
        });
        a.merge(&b);
        assert_eq!(a.records_seen, 15);
        assert_eq!(a.records_kept, 13);
        assert_eq!(a.quarantined.total(), 2);
        assert_eq!(a.failed_shards.len(), 1);
        assert_eq!(a.max_error_rate, 0.02);
        assert!(a.failed_shards[0].to_string().contains("mme shard 3"));
    }

    #[test]
    fn reason_labels_are_stable() {
        // quarantine.log is a machine-readable artifact; its labels are API.
        let labels: Vec<&str> = QuarantineReason::ALL.iter().map(|r| r.name()).collect();
        assert_eq!(
            labels,
            vec![
                "truncated",
                "bad-field",
                "duplicate",
                "out-of-order",
                "skewed",
                "unknown-imei"
            ]
        );
    }
}
