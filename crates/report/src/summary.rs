//! The packaged full report: every figure's rendering in one call, so the
//! CLI (and any embedding application) can produce the complete study
//! output without re-assembling the analyses by hand.

use wearscope_core::activity::{
    self, ActivityCorrelation, ActivitySpans, HourlyProfile, TransactionStats,
};
use wearscope_core::adoption::{AdoptionTrend, CohortRetention, DataActiveShare};
use wearscope_core::apps::{AppPopularity, AppUsage, CategoryPopularity};
use wearscope_core::compare::{self, OwnerVsRest, WearableShare};
use wearscope_core::devices::DeviceMix;
use wearscope_core::mobility::{Displacement, LocationEntropy, MobilityActivity, MobilityIndex};
use wearscope_core::quality::DataQualityReport;
use wearscope_core::sessions::{self, PerUsage};
use wearscope_core::thirdparty::DomainBreakdown;
use wearscope_core::through_device::ThroughDeviceReport;
use wearscope_core::weekly::WeeklyPattern;
use wearscope_core::StudyContext;
use wearscope_mobilenet::NetworkSummaries;

use crate::plot::{bar_chart_log, ecdf_plot, sparkline};
use crate::table::Table;

/// Renders the complete study as one text document: QA, every figure, and
/// the headline comparisons. The same content `examples/reproduce_paper.rs`
/// prints, but as a reusable library call.
pub fn render_full_report(ctx: &StudyContext<'_>, summaries: &NetworkSummaries) -> String {
    let mut out = String::new();
    let mut section = |title: &str, body: String| {
        out.push_str("\n== ");
        out.push_str(title);
        out.push_str(" ==\n");
        out.push_str(&body);
    };

    // QA first: nothing below is trustworthy if this is red.
    let quality = DataQualityReport::compute(ctx);
    section(
        "trace QA",
        format!(
            "{} proxy + {} MME records | day coverage {:.0}% | unresolved devices {} | unclassified wearable hosts {} | healthy: {}\n",
            quality.proxy_records,
            quality.mme_records,
            100.0 * quality.day_coverage,
            quality.unresolved_device_records,
            quality.unclassified_wearable_records,
            quality.is_healthy(0.01),
        ),
    );

    // Fig 2.
    let trend = AdoptionTrend::compute(&summaries.mme, &ctx.window);
    let series: Vec<f64> = trend.daily_normalized.iter().map(|(_, v)| *v).collect();
    section(
        "Fig 2(a): adoption",
        format!(
            "{}\ngrowth {:+.2}%/month (paper +1.5%); window total {:+.1}%\n",
            sparkline(&series),
            100.0 * trend.monthly_growth_rate,
            100.0 * trend.total_growth
        ),
    );
    let retention = CohortRetention::compute(&summaries.mme, &ctx.window);
    let active = DataActiveShare::compute(&summaries.mme, &summaries.wearable_traffic, &ctx.window);
    section(
        "Fig 2(b): cohort & data-active",
        format!(
            "first-week cohort {}: active {:.0}% / gone {:.0}% / intermittent {:.0}% (paper 77/7/16)\ndata-active {}/{} = {:.0}% (paper 34%)\n",
            retention.first_week_users,
            100.0 * retention.active_fraction,
            100.0 * retention.gone_fraction,
            100.0 * retention.intermittent_fraction,
            active.data_active,
            active.registered,
            100.0 * active.share
        ),
    );

    // Fig 3.
    let profile = HourlyProfile::compute(ctx);
    let wd: Vec<f64> = profile.weekday.iter().map(|h| h.transactions).collect();
    let we: Vec<f64> = profile.weekend.iter().map(|h| h.transactions).collect();
    section(
        "Fig 3(a): hourly transactions",
        format!("weekday {}\nweekend {}\n", sparkline(&wd), sparkline(&we)),
    );
    let act = activity::user_activity(ctx);
    let spans = ActivitySpans::compute(ctx, &act);
    section(
        "Fig 3(b): activity spans",
        format!(
            "days/week:\n{}hours/day:\n{}means {:.2} d/wk (paper ~1), {:.2} h/d (paper ~3); >10h {:.1}% (7%); <5h {:.0}% (80%)\n",
            ecdf_plot(&spans.days_per_week, 30, " d/wk"),
            ecdf_plot(&spans.hours_per_day, 30, " h/d"),
            spans.mean_days_per_week,
            spans.mean_hours_per_day,
            100.0 * spans.frac_over_10h,
            100.0 * spans.frac_under_5h
        ),
    );
    let tx_stats = TransactionStats::compute(ctx, &act);
    section(
        "Fig 3(c): transaction sizes",
        format!(
            "{}median {:.0} B (paper ~3 KB); <10 KB {:.0}% (80%)\n",
            ecdf_plot(&tx_stats.size, 30, " B"),
            tx_stats.median_bytes,
            100.0 * tx_stats.frac_under_10kb
        ),
    );
    let corr = ActivityCorrelation::compute(&act);
    section(
        "Fig 3(d): span↔rate correlation",
        format!(
            "pearson {:.2}, spearman {:.2} (paper: clear positive)\n",
            corr.pearson, corr.spearman
        ),
    );

    // Fig 4.
    let traffic = compare::user_traffic(ctx);
    let ovr = OwnerVsRest::compute(ctx, &traffic);
    let share = WearableShare::compute(ctx, &traffic);
    section(
        "Fig 4(a,b): owners vs rest",
        format!(
            "bytes ratio {:.2} (paper 1.26) | tx ratio {:.2} (paper 1.48)\nwearable share mean {:.1e} (paper ~1e-3); ≥3%: {:.1}% (paper 10%)\n",
            ovr.bytes_ratio,
            ovr.tx_ratio,
            share.mean_ratio,
            100.0 * share.frac_over_3pct
        ),
    );
    let mob = MobilityIndex::build(ctx);
    let disp = Displacement::compute(ctx, &mob);
    let entropy = LocationEntropy::compute(ctx, &mob);
    let ma = MobilityActivity::compute(ctx, &mob, &act);
    section(
        "Fig 4(c,d): mobility",
        format!(
            "{}owners {:.1} km vs rest {:.1} km (paper 31 vs 16); <30 km {:.0}% (90%)\nentropy ratio {:.2} (paper 1.7) | displacement↔rate r={:.2} | single-location {:.0}% (60%)\n",
            ecdf_plot(&disp.owners, 30, " km"),
            disp.owner_mean_km,
            disp.rest_mean_km,
            100.0 * disp.owners_under_30km,
            entropy.ratio,
            ma.pearson,
            100.0 * ma.single_location_share
        ),
    );

    // Fig 5/6/7.
    let attributed = sessions::attribute_transactions(ctx);
    let pop = AppPopularity::compute(&attributed);
    let rows: Vec<(String, f64)> = pop
        .rank
        .iter()
        .take(15)
        .map(|app| {
            (
                ctx.catalog.get(*app).map_or("?", |a| a.name).to_string(),
                100.0 * pop.daily_associated_users.get(app).copied().unwrap_or(0.0),
            )
        })
        .collect();
    section(
        "Fig 5(a): app popularity (top 15)",
        bar_chart_log(&rows, 30, "%"),
    );
    let sess = sessions::sessionize(&attributed);
    let usage = AppUsage::compute(&sess);
    let cats = CategoryPopularity::compute(ctx, &pop, &usage);
    let mut t = Table::new(vec!["category", "users%", "freq%", "tx%", "data%"]);
    for (cat, users) in CategoryPopularity::ranked(&cats.users) {
        let g = |m: &std::collections::HashMap<wearscope_appdb::AppCategory, f64>| {
            format!("{:.2}", 100.0 * m.get(&cat).copied().unwrap_or(0.0))
        };
        t.row(vec![
            cat.name().to_string(),
            format!("{:.2}", 100.0 * users),
            g(&cats.frequency),
            g(&cats.transactions),
            g(&cats.data),
        ]);
    }
    section("Fig 6: categories", t.render());
    let per = PerUsage::compute(&sess);
    let mut per_rows: Vec<(String, f64)> = per
        .by_app
        .iter()
        .map(|(app, (_, bytes, _))| {
            (
                ctx.catalog.get(*app).map_or("?", |a| a.name).to_string(),
                bytes / 1024.0,
            )
        })
        .collect();
    per_rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    per_rows.truncate(10);
    section(
        "Fig 7: KB per single usage (top 10)",
        bar_chart_log(&per_rows, 30, " KB"),
    );

    // Fig 8.
    let breakdown = DomainBreakdown::compute(ctx);
    let mut t = Table::new(vec!["class", "users%", "freq%", "data%"]);
    for class in wearscope_appdb::DomainClass::ALL {
        let i = class.index();
        t.row(vec![
            class.name().to_string(),
            format!("{:.2}", 100.0 * breakdown.users[i]),
            format!("{:.2}", 100.0 * breakdown.frequency[i]),
            format!("{:.2}", 100.0 * breakdown.data[i]),
        ]);
    }
    section("Fig 8: domain classes", t.render());

    // Sec 4.1/4.2 extensions.
    let mix = DeviceMix::compute(ctx);
    let weekly = WeeklyPattern::compute(ctx);
    section(
        "Sec 4.1/4.2: devices & weekly pattern",
        format!(
            "wearable users {}; Samsung+LG {:.0}% (paper: 'most')\nweekday CV {:.2} (paper: flat); weekend relative usage {:.2}; evening {:.2} (paper: slightly >1)\n",
            mix.total_users,
            100.0 * mix.manufacturer_share(&["Samsung", "LG"]),
            weekly.weekday_cv(),
            weekly.weekend_relative_usage,
            weekly.evening_relative_usage
        ),
    );

    // Sec 6.
    let through = ThroughDeviceReport::compute(ctx, &mob);
    section(
        "Sec 6: Through-Device",
        format!(
            "identified {} users; extrapolated ~{} at {:.0}% coverage; mobility similar to SIM users: {}\n",
            through.users.len(),
            through.estimated_total,
            100.0 * through.assumed_coverage,
            through.mobility_similar_to_sim_users(0.5)
        ),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wearscope_appdb::AppCatalog;
    use wearscope_devicedb::DeviceDb;
    use wearscope_geo::SectorDirectory;
    use wearscope_simtime::{ObservationWindow, SimTime};
    use wearscope_trace::{ProxyRecord, Scheme, TraceStore, UserId};

    #[test]
    fn full_report_renders_every_section() {
        let db = DeviceDb::standard();
        let catalog = AppCatalog::standard();
        let sectors = SectorDirectory::new();
        let store = TraceStore::from_records(
            vec![ProxyRecord {
                timestamp: SimTime::from_hours(10),
                user: UserId(1),
                imei: db.example_imei(db.wearable_tacs()[0], 1).as_u64(),
                host: "api.weather.com".into(),
                scheme: Scheme::Https,
                bytes_down: 2500,
                bytes_up: 300,
            }],
            vec![],
        );
        let ctx = StudyContext::new(
            &store,
            &db,
            &sectors,
            &catalog,
            ObservationWindow::compact(),
        );
        let report = render_full_report(&ctx, &NetworkSummaries::default());
        for heading in [
            "trace QA",
            "Fig 2(a)",
            "Fig 2(b)",
            "Fig 3(a)",
            "Fig 3(b)",
            "Fig 3(c)",
            "Fig 3(d)",
            "Fig 4(a,b)",
            "Fig 4(c,d)",
            "Fig 5(a)",
            "Fig 6",
            "Fig 7",
            "Fig 8",
            "Sec 4.1/4.2",
            "Sec 6",
        ] {
            assert!(report.contains(heading), "missing section {heading}");
        }
        assert!(report.contains("Weather"));
    }

    #[test]
    fn empty_world_report_does_not_panic() {
        let db = DeviceDb::standard();
        let catalog = AppCatalog::standard();
        let sectors = SectorDirectory::new();
        let store = TraceStore::new();
        let ctx = StudyContext::new(
            &store,
            &db,
            &sectors,
            &catalog,
            ObservationWindow::compact(),
        );
        let report = render_full_report(&ctx, &NetworkSummaries::default());
        assert!(report.contains("trace QA"));
    }
}
