//! Progress accounting for the parallel ingest engine.
//!
//! The engine (`wearscope-ingest`) hands every worker a shard of the log
//! and collects one [`ShardProgress`] per shard; the [`IngestReport`]
//! aggregates them into the totals and the human-readable summary printed
//! by `wearscope analyze --workers N`.

use std::time::Duration;

use crate::quality::DataQuality;
use crate::table::Table;

/// Which log a shard came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardSource {
    /// A byte range of the persisted proxy TSV log.
    Proxy,
    /// A byte range of the persisted MME TSV log.
    Mme,
    /// A user-hash partition of an in-memory [`wearscope_trace::TraceStore`].
    Memory,
}

impl ShardSource {
    /// Short label for tables.
    pub fn name(self) -> &'static str {
        match self {
            ShardSource::Proxy => "proxy",
            ShardSource::Mme => "mme",
            ShardSource::Memory => "memory",
        }
    }
}

/// Per-shard progress counters, filled by the worker that processed it.
#[derive(Clone, Debug)]
pub struct ShardProgress {
    /// Shard index within its source (merge order).
    pub shard: usize,
    /// Which log the shard came from.
    pub source: ShardSource,
    /// Records successfully parsed/absorbed.
    pub records: u64,
    /// Bytes covered by the shard (0 for in-memory shards).
    pub bytes: u64,
    /// Lines that failed to parse.
    pub parse_errors: u64,
    /// Wall time the worker spent on this shard.
    pub wall: Duration,
}

/// The full ingest run: worker count, per-shard progress, data quality,
/// and wall time.
#[derive(Clone, Debug, Default)]
pub struct IngestReport {
    /// Workers the engine ran with.
    pub workers: usize,
    /// One entry per shard, in merge (shard-index) order per source.
    pub shards: Vec<ShardProgress>,
    /// Records seen/kept/quarantined and shard failures.
    pub quality: DataQuality,
    /// End-to-end wall time of the parallel section.
    pub wall: Duration,
}

impl IngestReport {
    /// Total records absorbed across all shards.
    pub fn records(&self) -> u64 {
        self.shards.iter().map(|s| s.records).sum()
    }

    /// Total bytes covered across all shards.
    pub fn bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.bytes).sum()
    }

    /// Total parse errors across all shards.
    pub fn parse_errors(&self) -> u64 {
        self.shards.iter().map(|s| s.parse_errors).sum()
    }

    /// Records per second of wall time (0 for an instantaneous run).
    pub fn records_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.records() as f64 / secs
        } else {
            0.0
        }
    }

    /// One-line summary for log output.
    pub fn summary_line(&self) -> String {
        format!(
            "ingested {} records in {} shards with {} workers in {:.1?} ({:.0} records/s, {} parse errors)",
            self.records(),
            self.shards.len(),
            self.workers,
            self.wall,
            self.records_per_sec(),
            self.parse_errors(),
        )
    }

    /// Folds another report (e.g. the compute phase after the load phase)
    /// into this one. Wall times add — the phases run back to back — and
    /// the worker count keeps the larger pool.
    pub fn merge(&mut self, other: IngestReport) {
        self.workers = self.workers.max(other.workers);
        self.shards.extend(other.shards);
        self.quality.merge(&other.quality);
        self.wall += other.wall;
    }

    /// Per-shard table for verbose output.
    pub fn render_table(&self) -> String {
        let mut t = Table::new(vec!["source", "shard", "records", "bytes", "errors", "ms"]);
        for s in &self.shards {
            t.row(vec![
                s.source.name().into(),
                s.shard.to_string(),
                s.records.to_string(),
                s.bytes.to_string(),
                s.parse_errors.to_string(),
                format!("{:.1}", s.wall.as_secs_f64() * 1e3),
            ]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(i: usize, records: u64, errors: u64) -> ShardProgress {
        ShardProgress {
            shard: i,
            source: ShardSource::Proxy,
            records,
            bytes: records * 50,
            parse_errors: errors,
            wall: Duration::from_millis(10),
        }
    }

    #[test]
    fn totals_sum_over_shards() {
        let report = IngestReport {
            workers: 4,
            shards: vec![shard(0, 100, 0), shard(1, 50, 2)],
            wall: Duration::from_millis(30),
            ..IngestReport::default()
        };
        assert_eq!(report.records(), 150);
        assert_eq!(report.bytes(), 7500);
        assert_eq!(report.parse_errors(), 2);
        assert!(report.records_per_sec() > 0.0);
        assert!(report.summary_line().contains("150 records"));
        assert!(report.render_table().contains("proxy"));
    }

    #[test]
    fn empty_report_is_benign() {
        let report = IngestReport::default();
        assert_eq!(report.records(), 0);
        assert_eq!(report.records_per_sec(), 0.0);
    }
}
