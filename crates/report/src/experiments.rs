//! Paper-vs-measured comparison (the machine-checked half of
//! `EXPERIMENTS.md`).
//!
//! Each row pairs a number the paper reports with the value the pipeline
//! measured from simulated logs, plus an acceptance band. Absolute agreement
//! is not the goal (the substrate is a scaled simulator, not the authors'
//! network); the bands encode *shape* fidelity: who is larger, by roughly
//! what factor, which fractions are in the right regime.

use wearscope_core::takeaways::Takeaways;

use crate::table::Table;

/// Acceptance band for one experiment row.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Band {
    /// |measured − paper| ≤ frac · |paper|.
    Relative(f64),
    /// |measured − paper| ≤ abs.
    Absolute(f64),
    /// measured ≥ threshold (e.g. correlations that must be clearly positive).
    AtLeast(f64),
    /// measured must be 1.0 (boolean facts encoded as 0/1).
    True,
}

/// One paper-vs-measured comparison.
#[derive(Clone, Debug)]
pub struct ExperimentRow {
    /// Identifier, e.g. "Fig2a-growth".
    pub id: &'static str,
    /// Human description.
    pub description: &'static str,
    /// The value the paper reports.
    pub paper: f64,
    /// The value measured from the logs.
    pub measured: f64,
    /// Acceptance band.
    pub band: Band,
}

impl ExperimentRow {
    /// `true` if the measured value is inside the band.
    pub fn passes(&self) -> bool {
        match self.band {
            Band::Relative(f) => (self.measured - self.paper).abs() <= f * self.paper.abs(),
            Band::Absolute(a) => (self.measured - self.paper).abs() <= a,
            Band::AtLeast(t) => self.measured >= t,
            Band::True => self.measured >= 1.0,
        }
    }
}

/// The full comparison report.
#[derive(Clone, Debug)]
pub struct ExperimentReport {
    /// All rows, paper order.
    pub rows: Vec<ExperimentRow>,
}

impl ExperimentReport {
    /// Builds every scalar comparison from the pipeline takeaways, using the
    /// paper's 151-day window for window-length-dependent expectations.
    pub fn from_takeaways(t: &Takeaways) -> ExperimentReport {
        Self::from_takeaways_with_window(t, 151)
    }

    /// Builds the comparison for an observation of `summary_days` days (the
    /// expected total growth scales with the window length).
    pub fn from_takeaways_with_window(t: &Takeaways, summary_days: u64) -> ExperimentReport {
        let months = summary_days as f64 / 30.0;
        let rows = vec![
            ExperimentRow {
                id: "Fig2a-growth",
                description: "monthly adoption growth",
                paper: 0.015,
                measured: t.monthly_growth,
                band: Band::Relative(0.5),
            },
            ExperimentRow {
                id: "Fig2a-total",
                description: "total growth over window",
                paper: 0.015 * months,
                measured: t.total_growth,
                band: Band::Relative(0.5),
            },
            ExperimentRow {
                id: "S4.1-active",
                description: "share of registered users ever transacting",
                paper: 0.34,
                measured: t.data_active_share,
                band: Band::Relative(0.2),
            },
            ExperimentRow {
                id: "Fig2b-active",
                description: "first-week cohort active in last week",
                paper: 0.77,
                measured: t.cohort_active,
                band: Band::Relative(0.15),
            },
            ExperimentRow {
                id: "Fig2b-gone",
                description: "first-week cohort abandoned",
                paper: 0.07,
                measured: t.cohort_gone,
                band: Band::Absolute(0.05),
            },
            ExperimentRow {
                id: "S4.2-daily",
                description: "daily active share of weekly actives",
                paper: 0.35,
                measured: t.daily_active_share,
                band: Band::Relative(0.4),
            },
            ExperimentRow {
                id: "Fig3b-days",
                description: "mean active days per week",
                paper: 1.0,
                measured: t.mean_active_days_per_week,
                band: Band::Relative(0.5),
            },
            ExperimentRow {
                id: "Fig3b-hours",
                description: "mean active hours per day",
                paper: 3.0,
                measured: t.mean_active_hours_per_day,
                band: Band::Relative(0.4),
            },
            ExperimentRow {
                id: "Fig3b-10h",
                description: "users active > 10 h/day",
                paper: 0.07,
                measured: t.frac_over_10h,
                band: Band::Absolute(0.05),
            },
            ExperimentRow {
                id: "Fig3b-5h",
                description: "users active < 5 h/day",
                paper: 0.80,
                measured: t.frac_under_5h,
                band: Band::Absolute(0.12),
            },
            ExperimentRow {
                id: "Fig3c-median",
                description: "median transaction size (bytes)",
                paper: 3_000.0,
                measured: t.median_tx_bytes,
                band: Band::Relative(0.5),
            },
            ExperimentRow {
                id: "Fig3c-10kb",
                description: "transactions under 10 KB",
                paper: 0.80,
                measured: t.frac_tx_under_10kb,
                band: Band::Absolute(0.12),
            },
            ExperimentRow {
                id: "Fig3d-corr",
                description: "activity span vs tx-rate correlation",
                paper: 0.5,
                measured: t.activity_correlation,
                band: Band::AtLeast(0.12),
            },
            ExperimentRow {
                id: "Fig4a-bytes",
                description: "owner/rest bytes ratio",
                paper: 1.26,
                measured: t.owner_bytes_ratio,
                band: Band::Relative(0.25),
            },
            ExperimentRow {
                id: "Fig4a-tx",
                description: "owner/rest transactions ratio",
                paper: 1.48,
                measured: t.owner_tx_ratio,
                band: Band::Relative(0.25),
            },
            ExperimentRow {
                id: "Fig4b-share",
                description: "mean wearable share of owner traffic",
                paper: 0.001,
                measured: t.wearable_traffic_share,
                band: Band::Relative(9.0), // order-of-magnitude check
            },
            ExperimentRow {
                id: "Fig4b-3pct",
                description: "owners with ≥3% wearable traffic",
                paper: 0.10,
                measured: t.frac_owners_over_3pct,
                band: Band::Absolute(0.08),
            },
            ExperimentRow {
                id: "Fig4c-owner",
                description: "owner mean daily max displacement (km)",
                paper: 20.0,
                measured: t.owner_displacement_km,
                band: Band::Relative(0.5),
            },
            ExperimentRow {
                id: "Fig4c-rest",
                description: "rest mean daily max displacement (km)",
                paper: 16.0,
                measured: t.rest_displacement_km,
                band: Band::Relative(0.5),
            },
            ExperimentRow {
                id: "Fig4c-30km",
                description: "owners moving < 30 km/day",
                paper: 0.90,
                measured: t.owners_under_30km,
                band: Band::Absolute(0.10),
            },
            ExperimentRow {
                id: "S4.4-entropy",
                description: "location-entropy ratio owners/rest",
                paper: 1.7,
                measured: t.entropy_ratio,
                band: Band::Relative(0.35),
            },
            ExperimentRow {
                id: "Fig4d-corr",
                description: "displacement vs tx-rate correlation",
                paper: 0.4,
                measured: t.mobility_correlation,
                band: Band::AtLeast(0.1),
            },
            ExperimentRow {
                id: "S4.4-single",
                description: "data-active users transacting from one location",
                paper: 0.60,
                measured: t.single_location_share,
                band: Band::Absolute(0.15),
            },
            ExperimentRow {
                id: "S4.3-apps",
                description: "mean apps per user (observed lower-bounds installed)",
                paper: 8.0,
                measured: t.mean_apps_per_user,
                band: Band::Relative(0.70),
            },
            ExperimentRow {
                id: "S4.3-20apps",
                description: "users with < 20 apps",
                paper: 0.90,
                measured: t.frac_under_20_apps,
                band: Band::Absolute(0.10),
            },
            ExperimentRow {
                id: "S4.3-1app",
                description: "user-days running a single app",
                paper: 0.93,
                measured: t.single_app_day_share,
                band: Band::Absolute(0.12),
            },
            ExperimentRow {
                id: "Fig8-magnitude",
                description: "3rd-party data within 1 OoM of 1st-party",
                paper: 1.0,
                measured: f64::from(u8::from(t.thirdparty_same_magnitude)),
                band: Band::True,
            },
            ExperimentRow {
                id: "S4.2-weekend",
                description: "wearable weekend usage relative to overall",
                paper: 1.05,
                measured: t.weekend_relative_usage,
                band: Band::AtLeast(1.0),
            },
            ExperimentRow {
                id: "S4.1-vendors",
                description: "wearable users on Samsung/LG watches",
                paper: 0.85,
                measured: t.samsung_lg_share,
                band: Band::AtLeast(0.70),
            },
            ExperimentRow {
                id: "S6-throughdev",
                description: "through-device mobility similar to SIM users",
                paper: 1.0,
                measured: f64::from(u8::from(t.through_device_mobility_similar)),
                band: Band::True,
            },
        ];
        ExperimentReport { rows }
    }

    /// Number of passing rows.
    pub fn passed(&self) -> usize {
        self.rows.iter().filter(|r| r.passes()).count()
    }

    /// Total rows.
    pub fn total(&self) -> usize {
        self.rows.len()
    }

    /// Renders the comparison table.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec!["experiment", "description", "paper", "measured", "ok"]);
        for r in &self.rows {
            t.row(vec![
                r.id.to_string(),
                r.description.to_string(),
                format_value(r.paper),
                format_value(r.measured),
                if r.passes() {
                    "✓".into()
                } else {
                    "✗".into()
                },
            ]);
        }
        let mut s = t.render();
        s.push_str(&format!(
            "\n{}/{} within band\n",
            self.passed(),
            self.total()
        ));
        s
    }
}

impl ExperimentReport {
    /// Renders the comparison as a GitHub-flavoured markdown table (the
    /// EXPERIMENTS.md format).
    pub fn render_markdown(&self) -> String {
        let mut out = String::from(
            "| Experiment | Description | Paper | Measured | OK |\n|---|---|---:|---:|:-:|\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} |\n",
                r.id,
                r.description,
                format_value(r.paper),
                format_value(r.measured),
                if r.passes() { "✓" } else { "✗" }
            ));
        }
        out.push_str(&format!(
            "\n{}/{} within band\n",
            self.passed(),
            self.total()
        ));
        out
    }
}

fn format_value(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else if v.abs() >= 0.01 {
        format!("{v:.3}")
    } else {
        format!("{v:.2e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bands() {
        let row = |paper: f64, measured: f64, band: Band| ExperimentRow {
            id: "t",
            description: "t",
            paper,
            measured,
            band,
        };
        assert!(row(1.0, 1.05, Band::Relative(0.1)).passes());
        assert!(!row(1.0, 1.2, Band::Relative(0.1)).passes());
        assert!(row(0.07, 0.11, Band::Absolute(0.05)).passes());
        assert!(!row(0.07, 0.15, Band::Absolute(0.05)).passes());
        assert!(row(0.5, 0.2, Band::AtLeast(0.15)).passes());
        assert!(!row(0.5, 0.1, Band::AtLeast(0.15)).passes());
        assert!(row(1.0, 1.0, Band::True).passes());
        assert!(!row(1.0, 0.0, Band::True).passes());
    }

    #[test]
    fn report_renders_all_rows() {
        // A synthetic takeaways struct that passes everything exactly.
        let t = Takeaways {
            monthly_growth: 0.015,
            total_growth: 0.09,
            data_active_share: 0.34,
            cohort_active: 0.77,
            cohort_gone: 0.07,
            daily_active_share: 0.35,
            mean_active_days_per_week: 1.0,
            mean_active_hours_per_day: 3.0,
            frac_over_10h: 0.07,
            frac_under_5h: 0.80,
            median_tx_bytes: 3000.0,
            frac_tx_under_10kb: 0.80,
            activity_correlation: 0.5,
            owner_bytes_ratio: 1.26,
            owner_tx_ratio: 1.48,
            wearable_traffic_share: 0.001,
            frac_owners_over_3pct: 0.10,
            owner_displacement_km: 20.0,
            rest_displacement_km: 16.0,
            owners_under_30km: 0.90,
            entropy_ratio: 1.7,
            mobility_correlation: 0.4,
            single_location_share: 0.60,
            mean_apps_per_user: 8.0,
            frac_under_20_apps: 0.90,
            single_app_day_share: 0.93,
            thirdparty_same_magnitude: true,
            through_device_identified: 100,
            through_device_mobility_similar: true,
            weekend_relative_usage: 1.05,
            samsung_lg_share: 0.85,
        };
        let report = ExperimentReport::from_takeaways(&t);
        assert_eq!(report.passed(), report.total());
        assert!(report.total() >= 28);
        let rendered = report.render();
        assert!(rendered.contains("Fig2a-growth"));
        assert!(rendered.contains("within band"));
    }

    #[test]
    fn markdown_rendering() {
        let report = ExperimentReport {
            rows: vec![ExperimentRow {
                id: "X",
                description: "demo",
                paper: 1.0,
                measured: 1.0,
                band: Band::Relative(0.1),
            }],
        };
        let md = report.render_markdown();
        assert!(md.starts_with("| Experiment |"));
        assert!(md.contains("| X | demo | 1.00 | 1.00 | ✓ |"));
        assert!(md.contains("1/1 within band"));
    }

    #[test]
    fn value_formatting() {
        assert_eq!(format_value(0.0), "0");
        assert_eq!(format_value(1234.0), "1234");
        assert_eq!(format_value(1.26), "1.26");
        assert_eq!(format_value(0.34), "0.340");
        assert_eq!(format_value(0.001), "1.00e-3");
    }
}
