//! Plain-text tables.

/// A simple column-aligned ASCII table.
///
/// # Examples
/// ```
/// use wearscope_report::Table;
/// let mut t = Table::new(vec!["app", "users"]);
/// t.row(vec!["Weather".into(), "0.182".into()]);
/// let s = t.render();
/// assert!(s.contains("Weather"));
/// assert!(s.lines().count() >= 3);
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Table {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row(&mut self, mut cells: Vec<String>) -> &mut Self {
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with a header underline; numeric-looking cells right-align.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let numeric: Vec<bool> = (0..cols)
            .map(|i| {
                !self.rows.is_empty()
                    && self
                        .rows
                        .iter()
                        .all(|r| looks_numeric(&r[i]) || r[i].is_empty())
            })
            .collect();
        let mut out = String::new();
        let fmt_row = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate().take(cols) {
                if i > 0 {
                    out.push_str("  ");
                }
                let pad = widths[i].saturating_sub(cell.chars().count());
                if numeric[i] {
                    out.extend(std::iter::repeat_n(' ', pad));
                    out.push_str(cell);
                } else {
                    out.push_str(cell);
                    out.extend(std::iter::repeat_n(' ', pad));
                }
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        fmt_row(&self.headers, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.extend(std::iter::repeat_n('-', total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &mut out);
        }
        out
    }
}

fn looks_numeric(s: &str) -> bool {
    !s.is_empty()
        && s.chars().all(|c| {
            c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E' | '%' | '✓' | '✗')
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a".into(), "1.5".into()]);
        t.row(vec!["longer-name".into(), "20".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines same width or less (trailing spaces trimmed).
        assert!(lines[1].starts_with("---"));
        // Numeric column right-aligned: "1.5" ends at same col as "20"... both right-aligned.
        assert!(lines[2].contains("a"));
        assert!(lines[3].contains("longer-name"));
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["x".into()]);
        assert_eq!(t.len(), 1);
        let s = t.render();
        assert!(s.contains('x'));
    }

    #[test]
    fn empty_table() {
        let t = Table::new(vec!["a"]);
        assert!(t.is_empty());
        assert!(t.render().contains('a'));
    }
}
