//! Per-window reports for the streaming engine.
//!
//! A [`WindowReport`] is the finalized summary of one event-time window:
//! emitted once, when the low watermark passes the window's end (plus the
//! attribution slack). [`StreamSummary`] collects every emitted window
//! plus stream-level counters; its rendering is **deterministic** — no
//! wall-clock timestamps, no resume markers — so a killed-and-resumed run
//! and an uninterrupted one produce byte-identical report files, the
//! invariant the CI kill/resume step diffs for.

use core::fmt::Write as _;

use crate::quality::DataQuality;

/// The finalized summary of one event-time window.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WindowReport {
    /// Window index (`start = index * slide`).
    pub index: u64,
    /// Inclusive window start, in sim-seconds.
    pub start_secs: u64,
    /// Exclusive window end, in sim-seconds.
    pub end_secs: u64,
    /// Proxy records absorbed (all devices).
    pub proxy_records: u64,
    /// MME records absorbed.
    pub mme_records: u64,
    /// Wearable proxy transactions absorbed.
    pub wearable_tx: u64,
    /// Wearable proxy bytes absorbed.
    pub wearable_bytes: u64,
    /// Distinct users seen in the window (proxy side).
    pub users: u64,
    /// Wearable transactions attributed to an app.
    pub attributed: u64,
    /// Records that arrived after the watermark had passed their timestamp
    /// but within the allowed lateness, and were merged into this window.
    pub late_merged: u64,
    /// `true` if backpressure forced this window out before its watermark
    /// (drop-oldest policy) — its counts may be incomplete.
    pub forced: bool,
}

impl WindowReport {
    /// Human-readable one-liner, stable across runs.
    pub fn render_line(&self) -> String {
        format!(
            "window {:>6}  [{:>9}s, {:>9}s)  proxy={} mme={} users={} wtx={} wbytes={} attributed={} late={}{}",
            self.index,
            self.start_secs,
            self.end_secs,
            self.proxy_records,
            self.mme_records,
            self.users,
            self.wearable_tx,
            self.wearable_bytes,
            self.attributed,
            self.late_merged,
            if self.forced { "  [forced]" } else { "" },
        )
    }

    /// Machine-readable TSV line (checkpoint format).
    pub fn to_tsv(&self) -> String {
        format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            self.index,
            self.start_secs,
            self.end_secs,
            self.proxy_records,
            self.mme_records,
            self.wearable_tx,
            self.wearable_bytes,
            self.users,
            self.attributed,
            self.late_merged,
            u8::from(self.forced),
        )
    }

    /// Parses a line written by [`WindowReport::to_tsv`].
    ///
    /// # Errors
    /// Returns a description of the malformed field.
    pub fn from_tsv(line: &str) -> Result<WindowReport, String> {
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != 11 {
            return Err(format!(
                "window report needs 11 fields, found {}",
                fields.len()
            ));
        }
        let num = |i: usize| -> Result<u64, String> {
            fields[i]
                .parse::<u64>()
                .map_err(|_| format!("bad window report field {i}: `{}`", fields[i]))
        };
        Ok(WindowReport {
            index: num(0)?,
            start_secs: num(1)?,
            end_secs: num(2)?,
            proxy_records: num(3)?,
            mme_records: num(4)?,
            wearable_tx: num(5)?,
            wearable_bytes: num(6)?,
            users: num(7)?,
            attributed: num(8)?,
            late_merged: num(9)?,
            forced: match fields[10] {
                "0" => false,
                "1" => true,
                other => return Err(format!("bad forced flag `{other}`")),
            },
        })
    }
}

/// End-of-stream summary: every emitted window in index order, plus
/// stream-level counters and the data-quality ledger.
#[derive(Clone, Debug, Default)]
pub struct StreamSummary {
    /// Emitted windows, ascending by index, gaps filled with empty windows.
    pub windows: Vec<WindowReport>,
    /// Seen/kept/quarantined ledger (same shape as the batch loader's).
    pub quality: DataQuality,
    /// Total late-but-within-lateness records merged across all windows.
    pub late_merged: u64,
    /// Windows emitted early by drop-oldest backpressure.
    pub forced_emits: u64,
    /// Final low watermark in sim-seconds (`None` for an empty stream).
    pub final_watermark_secs: Option<u64>,
}

impl StreamSummary {
    /// Full deterministic report: one line per window, then totals.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("== stream windows ==\n");
        for w in &self.windows {
            out.push_str(&w.render_line());
            out.push('\n');
        }
        out.push_str("== stream summary ==\n");
        let _ = writeln!(
            out,
            "windows emitted: {} ({} forced)",
            self.windows.len(),
            self.forced_emits
        );
        let _ = writeln!(out, "late merged: {}", self.late_merged);
        match self.final_watermark_secs {
            Some(w) => {
                let _ = writeln!(out, "final watermark: {w}s");
            }
            None => {
                let _ = writeln!(out, "final watermark: none (empty stream)");
            }
        }
        let _ = writeln!(out, "quality: {}", self.quality.summary_line());
        out
    }

    /// One-line summary for log output.
    pub fn summary_line(&self) -> String {
        format!(
            "{} windows ({} forced), {} late merged, {}",
            self.windows.len(),
            self.forced_emits,
            self.late_merged,
            self.quality.summary_line()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> WindowReport {
        WindowReport {
            index: 3,
            start_secs: 10800,
            end_secs: 14400,
            proxy_records: 120,
            mme_records: 44,
            wearable_tx: 17,
            wearable_bytes: 90210,
            users: 9,
            attributed: 11,
            late_merged: 2,
            forced: false,
        }
    }

    #[test]
    fn tsv_roundtrip() {
        let w = sample();
        assert_eq!(WindowReport::from_tsv(&w.to_tsv()).unwrap(), w);
        let forced = WindowReport { forced: true, ..w };
        assert_eq!(WindowReport::from_tsv(&forced.to_tsv()).unwrap(), forced);
    }

    #[test]
    fn tsv_rejects_malformed() {
        assert!(WindowReport::from_tsv("1\t2\t3").is_err());
        let w = sample().to_tsv().replace("120", "x");
        assert!(WindowReport::from_tsv(&w).is_err());
    }

    #[test]
    fn render_is_deterministic_and_complete() {
        let mut s = StreamSummary {
            late_merged: 2,
            final_watermark_secs: Some(14100),
            ..StreamSummary::default()
        };
        s.windows.push(sample());
        s.quality.records_seen = 164;
        s.quality.records_kept = 164;
        let a = s.render();
        let b = s.render();
        assert_eq!(a, b);
        assert!(a.contains("window      3"), "{a}");
        assert!(a.contains("windows emitted: 1 (0 forced)"), "{a}");
        assert!(a.contains("final watermark: 14100s"), "{a}");
        assert!(s.summary_line().contains("1 windows"));
    }

    #[test]
    fn forced_window_is_marked() {
        let w = WindowReport {
            forced: true,
            ..sample()
        };
        assert!(w.render_line().ends_with("[forced]"));
    }
}
