//! CSV export of every figure's data series — the machine-readable
//! counterpart of the terminal plots, so the figures can be re-plotted with
//! any external tool.

use std::io;
use std::path::Path;

use wearscope_core::activity::{ActivityCorrelation, ActivitySpans};
use wearscope_core::adoption::{AdoptionTrend, CohortRetention};
use wearscope_core::apps::{AppUsage, CategoryPopularity};
use wearscope_core::mobility::{Displacement, LocationEntropy, MobilityActivity};
use wearscope_core::sessions::{self, PerUsage};
use wearscope_core::thirdparty::DomainBreakdown;
use wearscope_core::{CoreAggregates, Ecdf, StudyContext};
use wearscope_mobilenet::NetworkSummaries;

use crate::csv::CsvWriter;

/// Writes one CSV file per paper figure into a directory.
pub struct FigureCsvExporter<'a> {
    ctx: &'a StudyContext<'a>,
    summaries: &'a NetworkSummaries,
    aggs: Option<&'a CoreAggregates>,
}

impl<'a> FigureCsvExporter<'a> {
    /// Creates an exporter over a study context and vantage summaries; the
    /// hot aggregates are computed sequentially during export.
    pub fn new(ctx: &'a StudyContext<'a>, summaries: &'a NetworkSummaries) -> Self {
        FigureCsvExporter {
            ctx,
            summaries,
            aggs: None,
        }
    }

    /// Creates an exporter over pre-computed hot aggregates — the entry
    /// point used by the parallel ingest engine, which produces an
    /// identical [`CoreAggregates`] via sharded mergeable folds.
    pub fn with_aggregates(
        ctx: &'a StudyContext<'a>,
        summaries: &'a NetworkSummaries,
        aggs: &'a CoreAggregates,
    ) -> Self {
        FigureCsvExporter {
            ctx,
            summaries,
            aggs: Some(aggs),
        }
    }

    /// Runs every analysis and writes all figure CSVs under `dir`; returns
    /// the number of files written.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn export_all(&self, dir: &Path) -> io::Result<usize> {
        let computed;
        let aggs = match self.aggs {
            Some(a) => a,
            None => {
                computed = CoreAggregates::sequential(self.ctx);
                &computed
            }
        };
        std::fs::create_dir_all(dir)?;
        let mut written = 0usize;
        let mut emit = |name: &str, content: String| -> io::Result<()> {
            std::fs::write(dir.join(name), content)?;
            written += 1;
            Ok(())
        };

        // Fig 2(a): adoption series.
        let trend = AdoptionTrend::compute(&self.summaries.mme, &self.ctx.window);
        let mut w = CsvWriter::new(vec!["day", "normalized_users"]);
        for (day, v) in &trend.daily_normalized {
            w.row(vec![day.to_string(), format!("{v:.6}")]);
        }
        emit("fig2a_adoption.csv", w.finish())?;

        // Fig 2(b): cohort retention.
        let retention = CohortRetention::compute(&self.summaries.mme, &self.ctx.window);
        let mut w = CsvWriter::new(vec!["category", "fraction"]);
        for (name, v) in [
            ("active", retention.active_fraction),
            ("gone", retention.gone_fraction),
            ("intermittent", retention.intermittent_fraction),
        ] {
            w.row(vec![name.into(), format!("{v:.6}")]);
        }
        emit("fig2b_retention.csv", w.finish())?;

        // Fig 3(a): hourly profile.
        let profile = &aggs.hourly;
        let mut w = CsvWriter::new(vec!["day_type", "hour", "users", "transactions", "bytes"]);
        for (label, slots) in [("weekday", &profile.weekday), ("weekend", &profile.weekend)] {
            for (h, s) in slots.iter().enumerate() {
                w.row(vec![
                    label.into(),
                    h.to_string(),
                    format!("{:.8}", s.active_users),
                    format!("{:.8}", s.transactions),
                    format!("{:.8}", s.bytes),
                ]);
            }
        }
        emit("fig3a_hourly.csv", w.finish())?;

        // Fig 3(b): spans; Fig 3(c): sizes; Fig 3(d): correlation points.
        let act = &aggs.activity;
        let spans = ActivitySpans::compute(self.ctx, act);
        emit("fig3b_days_per_week.csv", ecdf_csv(&spans.days_per_week))?;
        emit("fig3b_hours_per_day.csv", ecdf_csv(&spans.hours_per_day))?;
        emit("fig3c_tx_sizes.csv", ecdf_csv(&aggs.tx_stats.size))?;
        let corr = ActivityCorrelation::compute(act);
        let mut w = CsvWriter::new(vec!["active_hours_per_day", "tx_per_active_hour"]);
        for (x, y) in &corr.points {
            w.row(vec![format!("{x:.4}"), format!("{y:.4}")]);
        }
        emit("fig3d_activity_scatter.csv", w.finish())?;

        // Fig 4(a,b).
        let traffic = &aggs.traffic;
        let ovr = wearscope_core::compare::OwnerVsRest::compute(self.ctx, traffic);
        emit("fig4a_owner_bytes.csv", ecdf_csv(&ovr.owner_bytes))?;
        emit("fig4a_rest_bytes.csv", ecdf_csv(&ovr.rest_bytes))?;
        let share = wearscope_core::compare::WearableShare::compute(self.ctx, traffic);
        emit("fig4b_wearable_share.csv", ecdf_csv(&share.ratio))?;

        // Fig 4(c,d).
        let index = &aggs.mobility;
        let disp = Displacement::compute(self.ctx, index);
        emit("fig4c_owner_displacement.csv", ecdf_csv(&disp.owners))?;
        emit("fig4c_rest_displacement.csv", ecdf_csv(&disp.rest))?;
        let entropy = LocationEntropy::compute(self.ctx, index);
        emit("fig4c_owner_entropy.csv", ecdf_csv(&entropy.owners))?;
        emit("fig4c_rest_entropy.csv", ecdf_csv(&entropy.rest))?;
        let ma = MobilityActivity::compute(self.ctx, index, act);
        let mut w = CsvWriter::new(vec!["mean_daily_displacement_km", "tx_per_active_hour"]);
        for (x, y) in &ma.points {
            w.row(vec![format!("{x:.4}"), format!("{y:.4}")]);
        }
        emit("fig4d_mobility_scatter.csv", w.finish())?;

        // Fig 5/6/7.
        let attributed = &aggs.attributed;
        let pop = &aggs.popularity;
        let mut w = CsvWriter::new(vec!["app", "daily_associated_users", "app_used_days"]);
        for app in &pop.rank {
            let name = self.ctx.catalog.get(*app).map_or("?", |a| a.name);
            w.row(vec![
                name.into(),
                format!(
                    "{:.8}",
                    pop.daily_associated_users.get(app).copied().unwrap_or(0.0)
                ),
                format!(
                    "{:.8}",
                    pop.app_used_days_per_user.get(app).copied().unwrap_or(0.0)
                ),
            ]);
        }
        emit("fig5a_app_popularity.csv", w.finish())?;

        let sess = sessions::sessionize(attributed);
        let usage = AppUsage::compute(&sess);
        let mut w = CsvWriter::new(vec!["app", "frequency", "transactions", "data"]);
        for app in &pop.rank {
            let name = self.ctx.catalog.get(*app).map_or("?", |a| a.name);
            let g = |m: &std::collections::HashMap<wearscope_appdb::AppId, f64>| {
                format!("{:.8}", m.get(app).copied().unwrap_or(0.0))
            };
            w.row(vec![
                name.into(),
                g(&usage.frequency),
                g(&usage.transactions),
                g(&usage.data),
            ]);
        }
        emit("fig5b_app_usage.csv", w.finish())?;

        let cats = CategoryPopularity::compute(self.ctx, pop, &usage);
        let mut w = CsvWriter::new(vec![
            "category",
            "users",
            "frequency",
            "transactions",
            "data",
        ]);
        for (cat, users) in CategoryPopularity::ranked(&cats.users) {
            let g = |m: &std::collections::HashMap<wearscope_appdb::AppCategory, f64>| {
                format!("{:.8}", m.get(&cat).copied().unwrap_or(0.0))
            };
            w.row(vec![
                cat.name().into(),
                format!("{users:.8}"),
                g(&cats.frequency),
                g(&cats.transactions),
                g(&cats.data),
            ]);
        }
        emit("fig6_categories.csv", w.finish())?;

        let per = PerUsage::compute(&sess);
        let mut rows: Vec<(&str, f64, f64, usize)> = per
            .by_app
            .iter()
            .map(|(app, (tx, bytes, n))| {
                (
                    self.ctx.catalog.get(*app).map_or("?", |a| a.name),
                    *tx,
                    *bytes,
                    *n,
                )
            })
            .collect();
        rows.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap().then(a.0.cmp(b.0)));
        let mut w = CsvWriter::new(vec!["app", "tx_per_usage", "bytes_per_usage", "usages"]);
        for (name, tx, bytes, n) in rows {
            w.row(vec![
                name.into(),
                format!("{tx:.4}"),
                format!("{bytes:.1}"),
                n.to_string(),
            ]);
        }
        emit("fig7_per_usage.csv", w.finish())?;

        // Fig 8.
        let breakdown = DomainBreakdown::compute(self.ctx);
        let mut w = CsvWriter::new(vec!["class", "users", "frequency", "data"]);
        for class in wearscope_appdb::DomainClass::ALL {
            let i = class.index();
            w.row(vec![
                class.name().into(),
                format!("{:.8}", breakdown.users[i]),
                format!("{:.8}", breakdown.frequency[i]),
                format!("{:.8}", breakdown.data[i]),
            ]);
        }
        emit("fig8_domain_classes.csv", w.finish())?;

        Ok(written)
    }
}

/// Serializes an ECDF as `value,cdf` rows.
fn ecdf_csv(ecdf: &Ecdf) -> String {
    let mut w = CsvWriter::new(vec!["value", "cdf"]);
    for (x, f) in ecdf.curve() {
        w.row(vec![format!("{x:.6}"), format!("{f:.8}")]);
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wearscope_appdb::AppCatalog;
    use wearscope_devicedb::DeviceDb;
    use wearscope_geo::SectorDirectory;
    use wearscope_simtime::{ObservationWindow, SimTime};
    use wearscope_trace::{ProxyRecord, Scheme, TraceStore, UserId};

    #[test]
    fn export_writes_all_figures() {
        let db = DeviceDb::standard();
        let catalog = AppCatalog::standard();
        let sectors = SectorDirectory::new();
        let store = TraceStore::from_records(
            vec![ProxyRecord {
                timestamp: SimTime::from_hours(10),
                user: UserId(1),
                imei: db.example_imei(db.wearable_tacs()[0], 1).as_u64(),
                host: "api.weather.com".into(),
                scheme: Scheme::Https,
                bytes_down: 2500,
                bytes_up: 300,
            }],
            vec![],
        );
        let ctx = StudyContext::new(
            &store,
            &db,
            &sectors,
            &catalog,
            ObservationWindow::compact(),
        );
        let summaries = NetworkSummaries::default();
        let dir = std::env::temp_dir().join(format!("wearscope-figs-{}", std::process::id()));
        let n = FigureCsvExporter::new(&ctx, &summaries)
            .export_all(&dir)
            .unwrap();
        assert!(n >= 16, "{n} files");
        // Spot checks: headers and content.
        let fig5a = std::fs::read_to_string(dir.join("fig5a_app_popularity.csv")).unwrap();
        assert!(fig5a.starts_with("app,daily_associated_users"));
        assert!(fig5a.contains("Weather"));
        let fig3c = std::fs::read_to_string(dir.join("fig3c_tx_sizes.csv")).unwrap();
        assert!(fig3c.contains("2800"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
