//! Rendering pipeline metric snapshots for `--metrics` runs: the
//! wall-clock stage-timing table and a one-screen counter digest.
//!
//! The JSON snapshot ([`wearscope_obs::Snapshot::to_json`]) is the
//! machine-readable artifact; these renderers are what the CLI prints to
//! stderr so a human can see where a run spent its time without opening
//! the file.

use wearscope_obs::Snapshot;

use crate::Table;

/// Renders the snapshot's stage spans as a table in execution order,
/// indenting each stage by its depth in the span tree (one span path per
/// row; repeated spans accumulate into `count` and `total`).
pub fn render_stage_table(snapshot: &Snapshot) -> String {
    let stages = &snapshot.timing.stages;
    if stages.is_empty() {
        return String::new();
    }
    let mut t = Table::new(vec!["stage", "count", "total ms", "mean ms"]);
    for s in stages {
        let depth = s.path.matches('/').count();
        let name = s.path.rsplit('/').next().unwrap_or(&s.path);
        let label = format!("{}{}", "  ".repeat(depth), name);
        let total_ms = s.total_ns as f64 / 1e6;
        let mean_ms = total_ms / (s.count.max(1)) as f64;
        t.row(vec![
            label,
            s.count.to_string(),
            format!("{total_ms:.3}"),
            format!("{mean_ms:.3}"),
        ]);
    }
    t.render()
}

/// Renders the deterministic counters and gauges as a two-column table
/// (histograms are summarized as `count/sum`). Timing-section scalars are
/// appended under the same layout with a `timing.` prefix so the split
/// stays visible.
pub fn render_metrics(snapshot: &Snapshot) -> String {
    let mut t = Table::new(vec!["metric", "value"]);
    for (k, v) in &snapshot.counters {
        t.row(vec![k.clone(), v.to_string()]);
    }
    for (k, v) in &snapshot.gauges {
        t.row(vec![k.clone(), v.to_string()]);
    }
    for (k, h) in &snapshot.histograms {
        t.row(vec![k.clone(), format!("{}/{}", h.count, h.sum)]);
    }
    for (k, v) in &snapshot.timing.counters {
        t.row(vec![format!("timing.{k}"), v.to_string()]);
    }
    for (k, v) in &snapshot.timing.gauges {
        t.row(vec![format!("timing.{k}"), v.to_string()]);
    }
    for (k, h) in &snapshot.timing.histograms {
        t.row(vec![
            format!("timing.{k}"),
            format!("{}/{}", h.count, h.sum),
        ]);
    }
    if t.is_empty() {
        return String::new();
    }
    let mut out = t.render();
    let stages = render_stage_table(snapshot);
    if !stages.is_empty() {
        out.push('\n');
        out.push_str(&stages);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wearscope_obs::Registry;

    #[test]
    fn stage_table_indents_by_depth_in_execution_order() {
        let reg = Registry::new();
        {
            let root = reg.stage("analyze");
            {
                let load = root.child("load");
                load.child("shard").finish();
            }
            root.child("fold").finish();
        }
        let s = render_stage_table(&reg.snapshot());
        let lines: Vec<&str> = s.lines().collect();
        // Header, underline, then stages in first-seen order.
        assert!(lines[2].starts_with("    shard"), "{s}");
        assert!(lines[3].starts_with("  load"), "{s}");
        assert!(lines[4].starts_with("  fold"), "{s}");
        assert!(lines[5].starts_with("analyze"), "{s}");
    }

    #[test]
    fn metrics_digest_lists_both_sections() {
        let reg = Registry::new();
        reg.counter("ingest.records_seen").add(500);
        reg.gauge("stream.open_windows").set(3);
        reg.timing_counter("ingest.shards").add(8);
        let s = render_metrics(&reg.snapshot());
        assert!(s.contains("ingest.records_seen"), "{s}");
        assert!(s.contains("500"), "{s}");
        assert!(s.contains("stream.open_windows"), "{s}");
        assert!(s.contains("timing.ingest.shards"), "{s}");
    }

    #[test]
    fn empty_snapshot_renders_nothing() {
        let reg = Registry::new();
        assert_eq!(render_metrics(&reg.snapshot()), "");
        assert_eq!(render_stage_table(&reg.snapshot()), "");
    }
}
