//! Minimal CSV emission (RFC-4180 quoting).

/// A CSV writer that accumulates into a string.
///
/// # Examples
/// ```
/// use wearscope_report::CsvWriter;
/// let mut w = CsvWriter::new(vec!["app", "share"]);
/// w.row(vec!["Weather, the app".into(), "0.18".into()]);
/// let csv = w.finish();
/// assert!(csv.starts_with("app,share\n"));
/// assert!(csv.contains("\"Weather, the app\",0.18"));
/// ```
#[derive(Clone, Debug)]
pub struct CsvWriter {
    out: String,
    cols: usize,
}

impl CsvWriter {
    /// Starts a CSV document with a header row.
    pub fn new<S: AsRef<str>>(headers: Vec<S>) -> CsvWriter {
        let cols = headers.len();
        let mut w = CsvWriter {
            out: String::new(),
            cols,
        };
        w.write_row(headers.iter().map(|s| s.as_ref()));
        w
    }

    /// Appends a data row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.cols, "CSV row width mismatch");
        self.write_row(cells.iter().map(String::as_str));
        self
    }

    fn write_row<'a, I: Iterator<Item = &'a str>>(&mut self, cells: I) {
        let mut first = true;
        for cell in cells {
            if !first {
                self.out.push(',');
            }
            first = false;
            if cell.contains([',', '"', '\n', '\r']) {
                self.out.push('"');
                self.out.push_str(&cell.replace('"', "\"\""));
                self.out.push('"');
            } else {
                self.out.push_str(cell);
            }
        }
        self.out.push('\n');
    }

    /// The CSV document.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quotes_special_cells() {
        let mut w = CsvWriter::new(vec!["a", "b"]);
        w.row(vec!["x,y".into(), "say \"hi\"".into()]);
        w.row(vec!["line\nbreak".into(), "plain".into()]);
        let csv = w.finish();
        assert!(csv.contains("\"x,y\",\"say \"\"hi\"\"\""));
        assert!(csv.contains("\"line\nbreak\",plain"));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_checked() {
        let mut w = CsvWriter::new(vec!["a", "b"]);
        w.row(vec!["only-one".into()]);
    }
}
