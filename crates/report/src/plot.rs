//! Terminal plots: log-scale bar charts (Figs. 5/6/8), ECDF curves
//! (Figs. 3/4), and sparklines (Fig. 2(a)).

/// A horizontal bar chart with a log₁₀ value axis, matching the paper's
/// log-scale percentage figures. Values ≤ 0 render as empty bars.
pub fn bar_chart_log(rows: &[(String, f64)], width: usize, unit: &str) -> String {
    if rows.is_empty() {
        return String::from("(no data)\n");
    }
    let label_w = rows
        .iter()
        .map(|(l, _)| l.chars().count())
        .max()
        .unwrap_or(0);
    let max = rows.iter().map(|(_, v)| *v).fold(f64::MIN, f64::max);
    let min_positive = rows
        .iter()
        .map(|(_, v)| *v)
        .filter(|v| *v > 0.0)
        .fold(f64::MAX, f64::min);
    let mut out = String::new();
    if max <= 0.0 || !max.is_finite() {
        for (label, _) in rows {
            out.push_str(&format!("{label:label_w$}  |\n"));
        }
        return out;
    }
    let lo = (min_positive / 10.0).log10();
    let hi = max.log10();
    let span = (hi - lo).max(1e-9);
    for (label, v) in rows {
        let bar = if *v > 0.0 {
            let frac = ((v.log10() - lo) / span).clamp(0.0, 1.0);
            "#".repeat((frac * width as f64).round().max(1.0) as usize)
        } else {
            String::new()
        };
        out.push_str(&format!("{label:label_w$}  |{bar} {v:.4}{unit}\n"));
    }
    out
}

/// Renders an ECDF curve as rows of `(quantile, value)` with a bar.
pub fn ecdf_plot(ecdf: &wearscope_core::Ecdf, width: usize, unit: &str) -> String {
    if ecdf.is_empty() {
        return String::from("(no samples)\n");
    }
    let mut out = String::new();
    let max = ecdf.max().max(1e-12);
    for pct in [1, 5, 10, 25, 50, 75, 90, 95, 99] {
        let v = ecdf.quantile(pct as f64 / 100.0);
        let bar = "#".repeat(((v / max) * width as f64).round() as usize);
        out.push_str(&format!("p{pct:02}  |{bar} {v:.2}{unit}\n"));
    }
    out
}

/// A one-line sparkline over a numeric series.
pub fn sparkline(values: &[f64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let min = values.iter().cloned().fold(f64::MAX, f64::min);
    let max = values.iter().cloned().fold(f64::MIN, f64::max);
    let span = (max - min).max(1e-12);
    values
        .iter()
        .map(|v| {
            let idx = (((v - min) / span) * 7.0).round() as usize;
            GLYPHS[idx.min(7)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wearscope_core::Ecdf;

    #[test]
    fn bar_chart_orders_and_scales() {
        let rows = vec![
            ("big".to_string(), 10.0),
            ("small".to_string(), 0.01),
            ("zero".to_string(), 0.0),
        ];
        let s = bar_chart_log(&rows, 40, "%");
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        let hashes = |l: &str| l.chars().filter(|&c| c == '#').count();
        assert!(hashes(lines[0]) > hashes(lines[1]));
        assert_eq!(hashes(lines[2]), 0);
    }

    #[test]
    fn bar_chart_empty_and_all_zero() {
        assert!(bar_chart_log(&[], 10, "").contains("no data"));
        let s = bar_chart_log(&[("z".into(), 0.0)], 10, "");
        assert!(s.contains('|'));
    }

    #[test]
    fn ecdf_plot_has_quantiles() {
        let e = Ecdf::from_samples((1..=100).map(|i| i as f64).collect());
        let s = ecdf_plot(&e, 20, "km");
        assert!(s.contains("p50"));
        assert!(s.contains("p99"));
        assert!(ecdf_plot(&Ecdf::from_samples(vec![]), 20, "").contains("no samples"));
    }

    #[test]
    fn sparkline_shape() {
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
        assert_eq!(sparkline(&[]), "");
    }
}
