//! Reporting: ASCII tables and plots, CSV export, and the paper-vs-measured
//! experiment comparator that backs `EXPERIMENTS.md`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod csv;
pub mod experiments;
pub mod figures;
pub mod ingest;
pub mod obs;
pub mod plot;
pub mod quality;
pub mod stream;
pub mod summary;
pub mod table;

pub use csv::CsvWriter;
pub use experiments::{Band, ExperimentReport, ExperimentRow};
pub use figures::FigureCsvExporter;
pub use ingest::{IngestReport, ShardProgress, ShardSource};
pub use obs::{render_metrics, render_stage_table};
pub use plot::{bar_chart_log, ecdf_plot, sparkline};
pub use quality::{DataQuality, QuarantineCounts, QuarantineReason, ShardFailure};
pub use stream::{StreamSummary, WindowReport};
pub use summary::render_full_report;
pub use table::Table;
