//! Event-driven simulator of the ISP measurement infrastructure (Fig. 1 of
//! the paper).
//!
//! The behaviour generators (`wearscope-synthpop`) emit a time-ordered
//! stream of [`NetworkEvent`]s — attaches, detaches, sector moves, and
//! HTTP/HTTPS transactions. This crate implements the network elements that
//! observe that stream and produce the study's logs:
//!
//! * [`Mme`] — tracks per-device registration state and the current sector,
//!   writes the MME log, and maintains the daily registered-user summary the
//!   paper's five-month adoption analysis uses;
//! * [`TransparentProxy`] — logs one [`wearscope_trace::ProxyRecord`] per
//!   transaction and keeps aggregate counters;
//! * [`MobileNetwork`] — composes both elements over a shared
//!   [`wearscope_geo::SectorDirectory`] and collects everything into a
//!   [`wearscope_trace::TraceStore`].
//!
//! The elements are *observers*: they never alter the behaviour stream,
//! exactly like the passive taps in the real network. Anomalous event
//! sequences (a move for a detached device, time regressions) are tolerated
//! and counted, as a middlebox would, rather than rejected.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod event;
pub mod mme;
pub mod network;
pub mod proxy;

pub use event::NetworkEvent;
pub use mme::{Mme, MmeSummary, SectorCensus};
pub use network::{MobileNetwork, NetworkStats, NetworkSummaries};
pub use proxy::{ProxyCounters, TransparentProxy, WearableTrafficSummary};
