//! The transparent Web proxy.

use std::collections::{BTreeMap, HashSet};

use wearscope_simtime::SimTime;
use wearscope_trace::{ProxyRecord, Scheme, UserId};

/// Aggregate transaction counters the proxy maintains (the ISP uses the
/// proxy for traffic optimization; we keep the performance-metric side).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProxyCounters {
    /// Total transactions observed.
    pub transactions: u64,
    /// HTTPS transactions (SNI-logged).
    pub https_transactions: u64,
    /// Total downlink bytes.
    pub bytes_down: u64,
    /// Total uplink bytes.
    pub bytes_up: u64,
}

impl ProxyCounters {
    /// Total bytes in both directions.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_down + self.bytes_up
    }

    /// Fraction of transactions that were HTTPS (0 when empty).
    pub fn https_fraction(&self) -> f64 {
        if self.transactions == 0 {
            0.0
        } else {
            self.https_transactions as f64 / self.transactions as f64
        }
    }
}

/// Long-horizon summary of *wearable-device* transactions, kept even outside
/// the detailed log-retention window.
///
/// The paper computes "only 34 % of SIM-enabled users actually generate any
/// network transaction" over the full five months from proxy *summary
/// statistics*, while raw logs are only retained for the last seven weeks.
#[derive(Clone, Debug, Default)]
pub struct WearableTrafficSummary {
    users_by_day: BTreeMap<u64, HashSet<UserId>>,
    transactions_by_day: BTreeMap<u64, u64>,
    bytes_by_day: BTreeMap<u64, u64>,
}

impl WearableTrafficSummary {
    /// Writes the summary: `U\tday\tuser` lines for per-day user sets and
    /// `D\tday\ttransactions\tbytes` lines for per-day totals.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn write_tsv<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        for (day, users) in &self.users_by_day {
            let mut sorted: Vec<u64> = users.iter().map(|u| u.raw()).collect();
            sorted.sort_unstable();
            for user in sorted {
                writeln!(w, "U\t{day}\t{user}")?;
            }
        }
        for (day, tx) in &self.transactions_by_day {
            let bytes = self.bytes_by_day.get(day).copied().unwrap_or(0);
            writeln!(w, "D\t{day}\t{tx}\t{bytes}")?;
        }
        Ok(())
    }

    /// Reads a summary written by [`WearableTrafficSummary::write_tsv`].
    ///
    /// # Errors
    /// Fails on I/O errors or malformed lines.
    pub fn read_tsv<R: std::io::BufRead>(r: R) -> std::io::Result<WearableTrafficSummary> {
        let mut out = WearableTrafficSummary::default();
        for (line_no, line) in r.lines().enumerate() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let bad = || {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("traffic summary line {}: malformed", line_no + 1),
                )
            };
            let mut fields = line.split('\t');
            match fields.next().ok_or_else(bad)? {
                "U" => {
                    let day: u64 = fields.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                    let user: u64 = fields.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                    out.users_by_day
                        .entry(day)
                        .or_default()
                        .insert(UserId(user));
                }
                "D" => {
                    let day: u64 = fields.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                    let tx: u64 = fields.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                    let bytes: u64 = fields.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                    *out.transactions_by_day.entry(day).or_default() += tx;
                    *out.bytes_by_day.entry(day).or_default() += bytes;
                }
                _ => return Err(bad()),
            }
        }
        Ok(out)
    }

    fn note(&mut self, t: SimTime, user: UserId, bytes: u64) {
        let day = t.day_index();
        self.users_by_day.entry(day).or_default().insert(user);
        *self.transactions_by_day.entry(day).or_default() += 1;
        *self.bytes_by_day.entry(day).or_default() += bytes;
    }

    /// Users with at least one wearable transaction on any day in `[from, to)`.
    pub fn users_in_days(&self, from: u64, to: u64) -> HashSet<UserId> {
        let mut out = HashSet::new();
        for (_, set) in self.users_by_day.range(from..to) {
            out.extend(set.iter().copied());
        }
        out
    }

    /// Users with at least one wearable transaction ever.
    pub fn users_ever(&self) -> HashSet<UserId> {
        self.users_in_days(0, u64::MAX)
    }

    /// Distinct wearable-transacting users on `day`.
    pub fn users_on_day(&self, day: u64) -> usize {
        self.users_by_day.get(&day).map_or(0, HashSet::len)
    }

    /// Wearable transactions on `day`.
    pub fn transactions_on_day(&self, day: u64) -> u64 {
        self.transactions_by_day.get(&day).copied().unwrap_or(0)
    }

    /// Wearable bytes on `day`.
    pub fn bytes_on_day(&self, day: u64) -> u64 {
        self.bytes_by_day.get(&day).copied().unwrap_or(0)
    }
}

/// The transparent HTTP/HTTPS proxy: logs one record per transaction with
/// the SNI (HTTPS) or URL host (HTTP), per Sec. 3.1 vantage point i.
#[derive(Debug, Default)]
pub struct TransparentProxy {
    log: Vec<ProxyRecord>,
    counters: ProxyCounters,
    wearable_summary: WearableTrafficSummary,
}

impl TransparentProxy {
    /// A proxy with empty logs.
    pub fn new() -> TransparentProxy {
        TransparentProxy::default()
    }

    /// Observes one transaction.
    ///
    /// `is_wearable` marks transactions from SIM-enabled wearable devices for
    /// the long-horizon summary; `retain_log` is false outside the detailed
    /// retention window (counters and summaries still update, the raw record
    /// is discarded — exactly the paper's data-retention regime).
    #[allow(clippy::too_many_arguments)]
    pub fn observe(
        &mut self,
        t: SimTime,
        user: UserId,
        imei: u64,
        host: &str,
        scheme: Scheme,
        bytes_down: u64,
        bytes_up: u64,
        is_wearable: bool,
        retain_log: bool,
    ) {
        self.counters.transactions += 1;
        if scheme == Scheme::Https {
            self.counters.https_transactions += 1;
        }
        self.counters.bytes_down += bytes_down;
        self.counters.bytes_up += bytes_up;
        if is_wearable {
            self.wearable_summary.note(t, user, bytes_down + bytes_up);
        }
        if retain_log {
            self.log.push(ProxyRecord {
                timestamp: t,
                user,
                imei,
                host: host.to_owned(),
                scheme,
                bytes_down,
                bytes_up,
            });
        }
    }

    /// The long-horizon wearable traffic summary.
    pub fn wearable_summary(&self) -> &WearableTrafficSummary {
        &self.wearable_summary
    }

    /// The aggregate counters.
    pub fn counters(&self) -> ProxyCounters {
        self.counters
    }

    /// The accumulated log.
    pub fn log(&self) -> &[ProxyRecord] {
        &self.log
    }

    /// Drains the accumulated log (counters are retained).
    pub fn take_log(&mut self) -> Vec<ProxyRecord> {
        std::mem::take(&mut self.log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_accumulates() {
        let mut p = TransparentProxy::new();
        p.observe(
            SimTime::from_secs(1),
            UserId(1),
            10,
            "a.com",
            Scheme::Https,
            100,
            20,
            true,
            true,
        );
        p.observe(
            SimTime::from_secs(2),
            UserId(2),
            11,
            "b.com",
            Scheme::Http,
            50,
            5,
            false,
            true,
        );
        let c = p.counters();
        assert_eq!(c.transactions, 2);
        assert_eq!(c.https_transactions, 1);
        assert_eq!(c.bytes_total(), 175);
        assert!((c.https_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(p.log().len(), 2);
        assert_eq!(p.log()[0].host, "a.com");
    }

    #[test]
    fn take_log_keeps_counters() {
        let mut p = TransparentProxy::new();
        p.observe(
            SimTime::from_secs(1),
            UserId(1),
            10,
            "a.com",
            Scheme::Https,
            100,
            20,
            true,
            true,
        );
        let log = p.take_log();
        assert_eq!(log.len(), 1);
        assert!(p.log().is_empty());
        assert_eq!(p.counters().transactions, 1);
    }

    #[test]
    fn empty_fraction_is_zero() {
        assert_eq!(TransparentProxy::new().counters().https_fraction(), 0.0);
    }

    #[test]
    fn unretained_transactions_still_counted_and_summarized() {
        let mut p = TransparentProxy::new();
        p.observe(
            SimTime::from_days(3),
            UserId(7),
            10,
            "a.com",
            Scheme::Https,
            100,
            20,
            true,
            false,
        );
        assert!(p.log().is_empty());
        assert_eq!(p.counters().transactions, 1);
        assert_eq!(p.wearable_summary().users_on_day(3), 1);
        assert_eq!(p.wearable_summary().transactions_on_day(3), 1);
        assert_eq!(p.wearable_summary().bytes_on_day(3), 120);
        assert!(p.wearable_summary().users_ever().contains(&UserId(7)));
    }

    #[test]
    fn traffic_summary_tsv_roundtrip() {
        let mut p = TransparentProxy::new();
        p.observe(
            SimTime::from_days(0),
            UserId(1),
            1,
            "a",
            Scheme::Https,
            100,
            20,
            true,
            false,
        );
        p.observe(
            SimTime::from_days(0),
            UserId(2),
            1,
            "a",
            Scheme::Https,
            50,
            0,
            true,
            false,
        );
        p.observe(
            SimTime::from_days(4),
            UserId(1),
            1,
            "a",
            Scheme::Https,
            10,
            0,
            true,
            false,
        );
        let mut buf = Vec::new();
        p.wearable_summary().write_tsv(&mut buf).unwrap();
        let back = WearableTrafficSummary::read_tsv(buf.as_slice()).unwrap();
        assert_eq!(back.users_on_day(0), 2);
        assert_eq!(back.transactions_on_day(0), 2);
        assert_eq!(back.bytes_on_day(0), 170);
        assert_eq!(back.users_ever(), p.wearable_summary().users_ever());
        assert!(WearableTrafficSummary::read_tsv("X\t1".as_bytes()).is_err());
    }

    #[test]
    fn non_wearable_not_summarized() {
        let mut p = TransparentProxy::new();
        p.observe(
            SimTime::from_days(0),
            UserId(1),
            10,
            "a.com",
            Scheme::Http,
            5,
            5,
            false,
            true,
        );
        assert_eq!(p.wearable_summary().users_on_day(0), 0);
        assert_eq!(p.wearable_summary().users_in_days(0, 10).len(), 0);
    }
}
