//! The composed network: MME + proxy over a sector deployment.

use parking_lot::Mutex;

use std::collections::HashSet;

use wearscope_devicedb::{DeviceDb, Imei};
use wearscope_geo::SectorDirectory;
use wearscope_simtime::{ObservationWindow, SimTime};
use wearscope_trace::TraceStore;

use crate::event::NetworkEvent;
use crate::mme::{Mme, MmeSummary, SectorCensus};
use crate::proxy::{ProxyCounters, TransparentProxy, WearableTrafficSummary};

/// Aggregate health/throughput statistics of a simulation run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Total events processed.
    pub events: u64,
    /// Events that arrived with a timestamp earlier than a previous event
    /// (tolerated — the logs are re-sorted — but indicative of a generator
    /// bug, so counted).
    pub time_regressions: u64,
    /// MME protocol anomalies (see [`Mme::anomalies`]).
    pub mme_anomalies: u64,
    /// Proxy counters.
    pub proxy: ProxyCounters,
}

/// The long-horizon summary statistics of both logging vantage points.
#[derive(Clone, Debug, Default)]
pub struct NetworkSummaries {
    /// Daily wearable registration summary from the MME.
    pub mme: MmeSummary,
    /// Daily wearable traffic summary from the proxy.
    pub wearable_traffic: WearableTrafficSummary,
    /// Per-sector attachment census (not persisted; derived live by the MME).
    pub census: SectorCensus,
}

impl NetworkSummaries {
    /// Persists both summaries as `summary_mme.tsv` and
    /// `summary_traffic.tsv` under `dir`.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn save(&self, dir: &std::path::Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let mme = std::fs::File::create(dir.join("summary_mme.tsv"))?;
        self.mme.write_tsv(std::io::BufWriter::new(mme))?;
        let traffic = std::fs::File::create(dir.join("summary_traffic.tsv"))?;
        self.wearable_traffic
            .write_tsv(std::io::BufWriter::new(traffic))?;
        Ok(())
    }

    /// Loads summaries written by [`NetworkSummaries::save`].
    ///
    /// # Errors
    /// Fails on filesystem errors or malformed files.
    pub fn load(dir: &std::path::Path) -> std::io::Result<NetworkSummaries> {
        let mme = std::fs::File::open(dir.join("summary_mme.tsv"))?;
        let wearable = std::fs::File::open(dir.join("summary_traffic.tsv"))?;
        Ok(NetworkSummaries {
            mme: MmeSummary::read_tsv(std::io::BufReader::new(mme))?,
            wearable_traffic: WearableTrafficSummary::read_tsv(std::io::BufReader::new(wearable))?,
            census: SectorCensus::default(),
        })
    }
}

/// The simulated mobile network: feeds a time-ordered [`NetworkEvent`]
/// stream through the MME and the transparent proxy and collects their logs.
///
/// Interior mutability (a [`parking_lot::Mutex`]) makes the network shareable
/// across generator threads: each worker can `handle` events for disjoint
/// user shards and the logs are merged time-sorted at collection.
///
/// # Examples
/// ```
/// use wearscope_devicedb::DeviceDb;
/// use wearscope_geo::{GeoPoint, SectorDirectory, SectorId};
/// use wearscope_mobilenet::{MobileNetwork, NetworkEvent};
/// use wearscope_simtime::SimTime;
/// use wearscope_trace::{Scheme, UserId};
///
/// let db = DeviceDb::standard();
/// let mut sectors = SectorDirectory::new();
/// sectors.push(GeoPoint::new(40.0, -3.0), None);
/// let net = MobileNetwork::new(db.clone(), sectors);
/// let imei = db.example_imei(db.wearable_tacs()[0], 1).as_u64();
/// net.handle(NetworkEvent::Attach {
///     t: SimTime::from_secs(1), user: UserId(1), imei, sector: SectorId(0),
/// });
/// net.handle(NetworkEvent::Transaction {
///     t: SimTime::from_secs(2), user: UserId(1), imei,
///     host: "api.weather.com".into(), scheme: Scheme::Https,
///     bytes_down: 2500, bytes_up: 300,
/// });
/// let (store, summaries, stats) = net.finish();
/// assert_eq!(store.proxy().len(), 1);
/// assert_eq!(store.mme().len(), 1);
/// assert_eq!(summaries.mme.users_on_day(0), 1);
/// assert_eq!(summaries.wearable_traffic.users_on_day(0), 1);
/// assert_eq!(stats.events, 2);
/// ```
#[derive(Debug)]
pub struct MobileNetwork {
    inner: Mutex<Inner>,
    sectors: SectorDirectory,
    wearable_tacs: HashSet<u32>,
    window: Option<ObservationWindow>,
}

#[derive(Debug)]
struct Inner {
    mme: Mme,
    proxy: TransparentProxy,
    last_time: SimTime,
    events: u64,
    time_regressions: u64,
}

impl MobileNetwork {
    /// A network over the given device database and sector deployment,
    /// retaining raw logs for the whole run.
    pub fn new(db: DeviceDb, sectors: SectorDirectory) -> MobileNetwork {
        Self::build(db, sectors, None)
    }

    /// A network that retains raw logs only inside `window.detailed()`,
    /// while summaries cover the whole observation — the paper's retention
    /// regime (five months of summary statistics, seven weeks of full logs).
    pub fn with_window(
        db: DeviceDb,
        sectors: SectorDirectory,
        window: ObservationWindow,
    ) -> MobileNetwork {
        Self::build(db, sectors, Some(window))
    }

    fn build(
        db: DeviceDb,
        sectors: SectorDirectory,
        window: Option<ObservationWindow>,
    ) -> MobileNetwork {
        let wearable_tacs = db.wearable_tacs().iter().map(|t| t.value()).collect();
        let mme = match window {
            Some(w) => Mme::with_window(&db, w),
            None => Mme::new(&db),
        };
        MobileNetwork {
            inner: Mutex::new(Inner {
                mme,
                proxy: TransparentProxy::new(),
                last_time: SimTime::EPOCH,
                events: 0,
                time_regressions: 0,
            }),
            sectors,
            wearable_tacs,
            window,
        }
    }

    fn is_wearable(&self, imei: u64) -> bool {
        Imei::from_u64(imei)
            .map(|i| self.wearable_tacs.contains(&i.tac().value()))
            .unwrap_or(false)
    }

    /// The sector deployment this network serves.
    pub fn sectors(&self) -> &SectorDirectory {
        &self.sectors
    }

    /// Processes one event.
    pub fn handle(&self, event: NetworkEvent) {
        let mut inner = self.inner.lock();
        let t = event.time();
        if t < inner.last_time {
            inner.time_regressions += 1;
        } else {
            inner.last_time = t;
        }
        inner.events += 1;
        match event {
            NetworkEvent::Attach {
                t,
                user,
                imei,
                sector,
            } => {
                inner.mme.attach(t, user, imei, sector);
            }
            NetworkEvent::Detach { t, user, imei } => {
                inner.mme.detach(t, user, imei);
            }
            NetworkEvent::Move {
                t,
                user,
                imei,
                sector,
            } => {
                inner.mme.sector_update(t, user, imei, sector);
            }
            NetworkEvent::Transaction {
                t,
                user,
                imei,
                host,
                scheme,
                bytes_down,
                bytes_up,
            } => {
                let is_wearable = self.is_wearable(imei);
                let retain = self.window.is_none_or(|w| w.in_detail(t));
                inner.proxy.observe(
                    t,
                    user,
                    imei,
                    &host,
                    scheme,
                    bytes_down,
                    bytes_up,
                    is_wearable,
                    retain,
                );
            }
        }
    }

    /// Processes a batch of events.
    pub fn handle_all<I: IntoIterator<Item = NetworkEvent>>(&self, events: I) {
        for e in events {
            self.handle(e);
        }
    }

    /// Finishes the run: returns the time-sorted trace store, the vantage
    /// point summaries, and run statistics.
    pub fn finish(self) -> (TraceStore, NetworkSummaries, NetworkStats) {
        let mut inner = self.inner.into_inner();
        let stats = NetworkStats {
            events: inner.events,
            time_regressions: inner.time_regressions,
            mme_anomalies: inner.mme.anomalies(),
            proxy: inner.proxy.counters(),
        };
        let store = TraceStore::from_records(inner.proxy.take_log(), inner.mme.take_log());
        let summaries = NetworkSummaries {
            mme: inner.mme.summary().clone(),
            wearable_traffic: inner.proxy.wearable_summary().clone(),
            census: inner.mme.census().clone(),
        };
        (store, summaries, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wearscope_geo::{GeoPoint, SectorId};
    use wearscope_trace::{Scheme, UserId};

    fn setup() -> (DeviceDb, MobileNetwork, u64) {
        let db = DeviceDb::standard();
        let mut sectors = SectorDirectory::new();
        sectors.push(GeoPoint::new(40.0, -3.0), None);
        sectors.push(GeoPoint::new(40.2, -3.1), None);
        let imei = db.example_imei(db.wearable_tacs()[0], 7).as_u64();
        let net = MobileNetwork::new(db.clone(), sectors);
        (db, net, imei)
    }

    #[test]
    fn event_stream_produces_sorted_store() {
        let (_, net, imei) = setup();
        let u = UserId(1);
        net.handle_all(vec![
            NetworkEvent::Attach {
                t: SimTime::from_secs(10),
                user: u,
                imei,
                sector: SectorId(0),
            },
            NetworkEvent::Transaction {
                t: SimTime::from_secs(20),
                user: u,
                imei,
                host: "h".into(),
                scheme: Scheme::Https,
                bytes_down: 1,
                bytes_up: 2,
            },
            NetworkEvent::Move {
                t: SimTime::from_secs(30),
                user: u,
                imei,
                sector: SectorId(1),
            },
            NetworkEvent::Detach {
                t: SimTime::from_secs(40),
                user: u,
                imei,
            },
        ]);
        let (store, _, stats) = net.finish();
        assert!(store.is_time_sorted());
        assert_eq!(store.mme().len(), 3);
        assert_eq!(store.proxy().len(), 1);
        assert_eq!(stats.events, 4);
        assert_eq!(stats.time_regressions, 0);
        assert_eq!(stats.mme_anomalies, 0);
    }

    #[test]
    fn time_regressions_counted_but_sorted_away() {
        let (_, net, imei) = setup();
        let u = UserId(1);
        net.handle(NetworkEvent::Attach {
            t: SimTime::from_secs(100),
            user: u,
            imei,
            sector: SectorId(0),
        });
        net.handle(NetworkEvent::Move {
            t: SimTime::from_secs(50),
            user: u,
            imei,
            sector: SectorId(1),
        });
        let (store, _, stats) = net.finish();
        assert_eq!(stats.time_regressions, 1);
        assert!(store.is_time_sorted());
    }

    #[test]
    fn shared_across_threads() {
        let (db, net, _) = setup();
        let net = std::sync::Arc::new(net);
        let tac = db.wearable_tacs()[0];
        std::thread::scope(|s| {
            for w in 0..4u64 {
                let net = net.clone();
                let imei = db.example_imei(tac, 100 + w as u32).as_u64();
                s.spawn(move || {
                    for k in 0..100u64 {
                        net.handle(NetworkEvent::Move {
                            t: SimTime::from_secs(k),
                            user: UserId(w),
                            imei,
                            sector: SectorId((k % 2) as u32),
                        });
                    }
                });
            }
        });
        let net = std::sync::Arc::into_inner(net).unwrap();
        let (store, summaries, stats) = net.finish();
        assert_eq!(stats.events, 400);
        assert_eq!(store.mme().len(), 400);
        assert!(store.is_time_sorted());
        assert_eq!(summaries.mme.users_on_day(0), 4);
    }
}
