//! The behaviour-stream event vocabulary.

use wearscope_geo::SectorId;
use wearscope_simtime::SimTime;
use wearscope_trace::{Scheme, UserId};

/// One event on the simulated radio/core network, as emitted by the
/// subscriber-behaviour generators and observed by the network elements.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetworkEvent {
    /// A device registered with the network at `sector`.
    Attach {
        /// Event time.
        t: SimTime,
        /// Subscriber.
        user: UserId,
        /// Device IMEI (raw 15-digit value).
        imei: u64,
        /// Serving sector.
        sector: SectorId,
    },
    /// A device deregistered.
    Detach {
        /// Event time.
        t: SimTime,
        /// Subscriber.
        user: UserId,
        /// Device IMEI.
        imei: u64,
    },
    /// A registered device moved to (or re-confirmed) a sector.
    Move {
        /// Event time.
        t: SimTime,
        /// Subscriber.
        user: UserId,
        /// Device IMEI.
        imei: u64,
        /// New serving sector.
        sector: SectorId,
    },
    /// An HTTP/HTTPS transaction traversed the core network.
    Transaction {
        /// Transaction start time.
        t: SimTime,
        /// Subscriber.
        user: UserId,
        /// Device IMEI.
        imei: u64,
        /// Destination host (SNI for HTTPS, URL host for HTTP).
        host: String,
        /// Scheme.
        scheme: Scheme,
        /// Downlink bytes.
        bytes_down: u64,
        /// Uplink bytes.
        bytes_up: u64,
    },
}

impl NetworkEvent {
    /// The event's timestamp.
    pub fn time(&self) -> SimTime {
        match self {
            NetworkEvent::Attach { t, .. }
            | NetworkEvent::Detach { t, .. }
            | NetworkEvent::Move { t, .. }
            | NetworkEvent::Transaction { t, .. } => *t,
        }
    }

    /// The subscriber the event belongs to.
    pub fn user(&self) -> UserId {
        match self {
            NetworkEvent::Attach { user, .. }
            | NetworkEvent::Detach { user, .. }
            | NetworkEvent::Move { user, .. }
            | NetworkEvent::Transaction { user, .. } => *user,
        }
    }

    /// The device the event belongs to.
    pub fn imei(&self) -> u64 {
        match self {
            NetworkEvent::Attach { imei, .. }
            | NetworkEvent::Detach { imei, .. }
            | NetworkEvent::Move { imei, .. }
            | NetworkEvent::Transaction { imei, .. } => *imei,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let e = NetworkEvent::Attach {
            t: SimTime::from_secs(5),
            user: UserId(1),
            imei: 42,
            sector: SectorId(3),
        };
        assert_eq!(e.time(), SimTime::from_secs(5));
        assert_eq!(e.user(), UserId(1));
        assert_eq!(e.imei(), 42);

        let tx = NetworkEvent::Transaction {
            t: SimTime::from_secs(9),
            user: UserId(2),
            imei: 7,
            host: "h".into(),
            scheme: Scheme::Https,
            bytes_down: 1,
            bytes_up: 2,
        };
        assert_eq!(tx.time(), SimTime::from_secs(9));
        assert_eq!(tx.user(), UserId(2));
        assert_eq!(tx.imei(), 7);
    }
}
