//! The Mobility Management Entity.

use std::collections::{BTreeMap, HashMap, HashSet};

use wearscope_devicedb::{DeviceDb, Imei};
use wearscope_geo::SectorId;
use wearscope_simtime::{ObservationWindow, SimTime};
use wearscope_trace::{MmeEvent, MmeRecord, UserId};

/// Per-device registration state tracked by the MME.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Registration {
    sector: SectorId,
    since: SimTime,
}

/// The MME: keeps track of which sector every registered subscriber is in
/// (Sec. 3.1, vantage point ii), emits the MME log, and accumulates the
/// daily-registration summary used for the five-month adoption trend.
///
/// Lenient by design: real MMEs see protocol weirdness constantly, so a move
/// or detach for an unknown device is logged (with an implicit attach where
/// needed) and counted in [`Mme::anomalies`], never dropped silently.
#[derive(Debug)]
pub struct Mme {
    /// (user, imei) → registration.
    registered: HashMap<(UserId, u64), Registration>,
    log: Vec<MmeRecord>,
    /// Daily distinct *wearable* registered users (the Fig. 2(a) series).
    summary: MmeSummary,
    /// TACs considered SIM-enabled wearables for the summary.
    wearable_tacs: HashSet<u32>,
    /// When set, raw records are only retained inside the detailed window;
    /// the summary always updates (the paper's retention regime).
    window: Option<ObservationWindow>,
    census: SectorCensus,
    anomalies: u64,
}

/// Per-sector attachment census: how many devices each antenna sector is
/// carrying, and the highest simultaneous load it ever saw. The network-
/// planning view of the same MME state the mobility analysis uses.
#[derive(Clone, Debug, Default)]
pub struct SectorCensus {
    current: HashMap<u32, u32>,
    peak: HashMap<u32, u32>,
    attaches: HashMap<u32, u64>,
}

impl SectorCensus {
    fn inc(&mut self, sector: u32) {
        let c = self.current.entry(sector).or_default();
        *c += 1;
        let p = self.peak.entry(sector).or_default();
        if *c > *p {
            *p = *c;
        }
        *self.attaches.entry(sector).or_default() += 1;
    }

    fn dec(&mut self, sector: u32) {
        if let Some(c) = self.current.get_mut(&sector) {
            *c = c.saturating_sub(1);
        }
    }

    /// Devices currently attached at `sector`.
    pub fn attached(&self, sector: u32) -> u32 {
        self.current.get(&sector).copied().unwrap_or(0)
    }

    /// Peak simultaneous attachment ever observed at `sector`.
    pub fn peak(&self, sector: u32) -> u32 {
        self.peak.get(&sector).copied().unwrap_or(0)
    }

    /// Total attach/handover arrivals at `sector`.
    pub fn arrivals(&self, sector: u32) -> u64 {
        self.attaches.get(&sector).copied().unwrap_or(0)
    }

    /// Sectors ranked by peak attachment, descending.
    pub fn busiest(&self, n: usize) -> Vec<(u32, u32)> {
        let mut v: Vec<(u32, u32)> = self.peak.iter().map(|(s, p)| (*s, *p)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }
}

/// Daily registration summary for SIM-enabled wearable users.
///
/// This mirrors the paper's long-horizon "summary statistics" collection:
/// full logs are only retained for the detailed window, but the count (and
/// membership) of wearable users registered each day is kept for the whole
/// observation.
#[derive(Clone, Debug, Default)]
pub struct MmeSummary {
    /// day index → set of wearable users registered at least once that day.
    daily_users: BTreeMap<u64, HashSet<UserId>>,
}

impl MmeSummary {
    /// Writes the summary as TSV lines `day\tuser`.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn write_tsv<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        for (day, users) in &self.daily_users {
            let mut sorted: Vec<u64> = users.iter().map(|u| u.raw()).collect();
            sorted.sort_unstable();
            for user in sorted {
                writeln!(w, "{day}\t{user}")?;
            }
        }
        Ok(())
    }

    /// Reads a summary written by [`MmeSummary::write_tsv`].
    ///
    /// # Errors
    /// Fails on I/O errors or malformed lines.
    pub fn read_tsv<R: std::io::BufRead>(r: R) -> std::io::Result<MmeSummary> {
        let mut out = MmeSummary::default();
        for (line_no, line) in r.lines().enumerate() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let bad = || {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("mme summary line {}: malformed", line_no + 1),
                )
            };
            let (day, user) = line.split_once('\t').ok_or_else(bad)?;
            let day: u64 = day.parse().map_err(|_| bad())?;
            let user: u64 = user.parse().map_err(|_| bad())?;
            out.note(day, UserId(user));
        }
        Ok(out)
    }

    /// Days with at least one registered wearable user, ascending.
    pub fn days(&self) -> impl Iterator<Item = u64> + '_ {
        self.daily_users.keys().copied()
    }

    /// Number of distinct wearable users registered on `day`.
    pub fn users_on_day(&self, day: u64) -> usize {
        self.daily_users.get(&day).map_or(0, HashSet::len)
    }

    /// The set of users registered on `day`.
    pub fn user_set(&self, day: u64) -> Option<&HashSet<UserId>> {
        self.daily_users.get(&day)
    }

    /// Distinct users registered on any day in `[from, to)`.
    pub fn users_in_days(&self, from: u64, to: u64) -> HashSet<UserId> {
        let mut out = HashSet::new();
        for (_, set) in self.daily_users.range(from..to) {
            out.extend(set.iter().copied());
        }
        out
    }

    fn note(&mut self, day: u64, user: UserId) {
        self.daily_users.entry(day).or_default().insert(user);
    }
}

impl Mme {
    /// An MME that summarizes registrations of devices whose TAC belongs to
    /// a SIM-enabled wearable model in `db`.
    pub fn new(db: &DeviceDb) -> Mme {
        let wearable_tacs = db.wearable_tacs().iter().map(|t| t.value()).collect();
        Mme {
            registered: HashMap::new(),
            log: Vec::new(),
            summary: MmeSummary::default(),
            wearable_tacs,
            window: None,
            census: SectorCensus::default(),
            anomalies: 0,
        }
    }

    /// Restricts raw-log retention to `window.detailed()`; the daily summary
    /// still covers the full observation.
    pub fn with_window(db: &DeviceDb, window: ObservationWindow) -> Mme {
        let mut mme = Mme::new(db);
        mme.window = Some(window);
        mme
    }

    fn is_wearable(&self, imei: u64) -> bool {
        Imei::from_u64(imei)
            .map(|i| self.wearable_tacs.contains(&i.tac().value()))
            .unwrap_or(false)
    }

    fn emit(&mut self, t: SimTime, user: UserId, imei: u64, event: MmeEvent, sector: SectorId) {
        if self.window.is_none_or(|w| w.in_detail(t)) {
            self.log.push(MmeRecord {
                timestamp: t,
                user,
                imei,
                event,
                sector: sector.raw(),
            });
        }
        if self.is_wearable(imei) {
            self.summary.note(t.day_index(), user);
        }
    }

    /// Handles a device attach.
    pub fn attach(&mut self, t: SimTime, user: UserId, imei: u64, sector: SectorId) {
        if let Some(prev) = self
            .registered
            .insert((user, imei), Registration { sector, since: t })
        {
            self.anomalies += 1; // re-attach without detach
            self.census.dec(prev.sector.raw());
        }
        self.census.inc(sector.raw());
        self.emit(t, user, imei, MmeEvent::Attach, sector);
    }

    /// Handles a detach; tolerates unknown devices.
    pub fn detach(&mut self, t: SimTime, user: UserId, imei: u64) {
        let sector = match self.registered.remove(&(user, imei)) {
            Some(reg) => {
                self.census.dec(reg.sector.raw());
                reg.sector
            }
            None => {
                self.anomalies += 1;
                SectorId(0)
            }
        };
        self.emit(t, user, imei, MmeEvent::Detach, sector);
    }

    /// Handles a sector move; implicitly attaches unknown devices.
    pub fn sector_update(&mut self, t: SimTime, user: UserId, imei: u64, sector: SectorId) {
        match self.registered.get_mut(&(user, imei)) {
            Some(reg) => {
                let prev = reg.sector;
                reg.sector = sector;
                reg.since = t;
                if prev != sector {
                    self.census.dec(prev.raw());
                    self.census.inc(sector.raw());
                }
            }
            None => {
                self.anomalies += 1;
                self.registered
                    .insert((user, imei), Registration { sector, since: t });
                self.census.inc(sector.raw());
            }
        }
        self.emit(t, user, imei, MmeEvent::SectorUpdate, sector);
    }

    /// The per-sector attachment census.
    pub fn census(&self) -> &SectorCensus {
        &self.census
    }

    /// The sector a device is currently attached at.
    pub fn current_sector(&self, user: UserId, imei: u64) -> Option<SectorId> {
        self.registered.get(&(user, imei)).map(|r| r.sector)
    }

    /// Number of currently registered devices.
    pub fn registered_count(&self) -> usize {
        self.registered.len()
    }

    /// Count of tolerated protocol anomalies.
    pub fn anomalies(&self) -> u64 {
        self.anomalies
    }

    /// The daily wearable registration summary.
    pub fn summary(&self) -> &MmeSummary {
        &self.summary
    }

    /// Drains the accumulated MME log.
    pub fn take_log(&mut self) -> Vec<MmeRecord> {
        std::mem::take(&mut self.log)
    }

    /// The accumulated MME log.
    pub fn log(&self) -> &[MmeRecord] {
        &self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wearable_imei(db: &DeviceDb) -> u64 {
        db.example_imei(db.wearable_tacs()[0], 1).as_u64()
    }

    fn phone_imei(db: &DeviceDb) -> u64 {
        let tacs = db.tacs_of_class(wearscope_devicedb::DeviceClass::Smartphone);
        db.example_imei(tacs[0], 1).as_u64()
    }

    #[test]
    fn attach_move_detach_lifecycle() {
        let db = DeviceDb::standard();
        let mut mme = Mme::new(&db);
        let (u, i) = (UserId(1), wearable_imei(&db));
        mme.attach(SimTime::from_secs(10), u, i, SectorId(5));
        assert_eq!(mme.current_sector(u, i), Some(SectorId(5)));
        mme.sector_update(SimTime::from_secs(20), u, i, SectorId(6));
        assert_eq!(mme.current_sector(u, i), Some(SectorId(6)));
        mme.detach(SimTime::from_secs(30), u, i);
        assert_eq!(mme.current_sector(u, i), None);
        assert_eq!(mme.anomalies(), 0);
        assert_eq!(mme.log().len(), 3);
        assert_eq!(mme.log()[0].event, MmeEvent::Attach);
        assert_eq!(mme.log()[2].event, MmeEvent::Detach);
    }

    #[test]
    fn anomalies_are_tolerated_and_counted() {
        let db = DeviceDb::standard();
        let mut mme = Mme::new(&db);
        let (u, i) = (UserId(1), wearable_imei(&db));
        // Move before attach: implicit attach.
        mme.sector_update(SimTime::from_secs(1), u, i, SectorId(2));
        assert_eq!(mme.anomalies(), 1);
        assert_eq!(mme.current_sector(u, i), Some(SectorId(2)));
        // Double attach.
        mme.attach(SimTime::from_secs(2), u, i, SectorId(3));
        assert_eq!(mme.anomalies(), 2);
        // Detach of unknown device.
        mme.detach(SimTime::from_secs(3), UserId(9), i);
        assert_eq!(mme.anomalies(), 3);
        // All three events still logged.
        assert_eq!(mme.log().len(), 3);
    }

    #[test]
    fn summary_counts_only_wearables() {
        let db = DeviceDb::standard();
        let mut mme = Mme::new(&db);
        let wi = wearable_imei(&db);
        let pi = phone_imei(&db);
        mme.attach(SimTime::from_days(0), UserId(1), wi, SectorId(0));
        mme.attach(SimTime::from_days(0), UserId(2), pi, SectorId(0));
        mme.attach(SimTime::from_days(1), UserId(1), wi, SectorId(0));
        assert_eq!(mme.summary().users_on_day(0), 1);
        assert_eq!(mme.summary().users_on_day(1), 1);
        assert_eq!(mme.summary().users_on_day(2), 0);
        let both = mme.summary().users_in_days(0, 2);
        assert_eq!(both.len(), 1);
        assert!(both.contains(&UserId(1)));
    }

    #[test]
    fn summary_daily_distinct() {
        let db = DeviceDb::standard();
        let mut mme = Mme::new(&db);
        let wi = wearable_imei(&db);
        for hour in 0..5 {
            mme.sector_update(
                SimTime::from_hours(hour),
                UserId(3),
                wi,
                SectorId(hour as u32),
            );
        }
        // Five events, one day, one user.
        assert_eq!(mme.summary().users_on_day(0), 1);
        assert_eq!(mme.log().len(), 5);
    }

    #[test]
    fn census_tracks_load_and_peak() {
        let db = DeviceDb::standard();
        let mut mme = Mme::new(&db);
        let i1 = wearable_imei(&db);
        let i2 = db.example_imei(db.wearable_tacs()[0], 2).as_u64();
        mme.attach(SimTime::from_secs(1), UserId(1), i1, SectorId(5));
        mme.attach(SimTime::from_secs(2), UserId(2), i2, SectorId(5));
        assert_eq!(mme.census().attached(5), 2);
        assert_eq!(mme.census().peak(5), 2);
        // User 1 moves away: load drops, peak stays.
        mme.sector_update(SimTime::from_secs(3), UserId(1), i1, SectorId(6));
        assert_eq!(mme.census().attached(5), 1);
        assert_eq!(mme.census().peak(5), 2);
        assert_eq!(mme.census().attached(6), 1);
        // Re-confirming the same sector does not double count.
        mme.sector_update(SimTime::from_secs(4), UserId(1), i1, SectorId(6));
        assert_eq!(mme.census().attached(6), 1);
        // Detach empties the sector.
        mme.detach(SimTime::from_secs(5), UserId(2), i2);
        assert_eq!(mme.census().attached(5), 0);
        assert_eq!(mme.census().arrivals(5), 2);
        let busiest = mme.census().busiest(10);
        assert_eq!(busiest[0], (5, 2));
    }

    #[test]
    fn summary_tsv_roundtrip() {
        let db = DeviceDb::standard();
        let mut mme = Mme::new(&db);
        let wi = wearable_imei(&db);
        for (day, user) in [(0u64, 1u64), (0, 2), (3, 1), (7, 9)] {
            mme.attach(SimTime::from_days(day), UserId(user), wi, SectorId(0));
        }
        let mut buf = Vec::new();
        mme.summary().write_tsv(&mut buf).unwrap();
        let back = MmeSummary::read_tsv(buf.as_slice()).unwrap();
        assert_eq!(back.users_on_day(0), 2);
        assert_eq!(back.users_on_day(3), 1);
        assert_eq!(
            back.users_in_days(0, 10),
            mme.summary().users_in_days(0, 10)
        );
        assert!(MmeSummary::read_tsv("garbage".as_bytes()).is_err());
    }

    #[test]
    fn take_log_drains() {
        let db = DeviceDb::standard();
        let mut mme = Mme::new(&db);
        mme.attach(SimTime::EPOCH, UserId(1), wearable_imei(&db), SectorId(0));
        let log = mme.take_log();
        assert_eq!(log.len(), 1);
        assert!(mme.log().is_empty());
    }

    #[test]
    fn window_limits_log_but_not_summary() {
        let db = DeviceDb::standard();
        let window = ObservationWindow::new(30, 10, wearscope_simtime::Calendar::PAPER);
        let mut mme = Mme::with_window(&db, window);
        let (u, i) = (UserId(1), wearable_imei(&db));
        // Day 5: before the detailed window.
        mme.attach(SimTime::from_days(5), u, i, SectorId(0));
        // Day 25: inside the detailed window.
        mme.sector_update(SimTime::from_days(25), u, i, SectorId(1));
        assert_eq!(mme.log().len(), 1);
        assert_eq!(mme.log()[0].timestamp.day_index(), 25);
        assert_eq!(mme.summary().users_on_day(5), 1);
        assert_eq!(mme.summary().users_on_day(25), 1);
    }

    #[test]
    fn invalid_imei_not_summarized() {
        let db = DeviceDb::standard();
        let mut mme = Mme::new(&db);
        // 42 is not a valid IMEI (bad check digit) — logged but not counted.
        mme.attach(SimTime::EPOCH, UserId(1), 42, SectorId(0));
        assert_eq!(mme.log().len(), 1);
        assert_eq!(mme.summary().users_on_day(0), 0);
    }
}
