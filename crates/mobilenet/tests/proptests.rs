//! Property-based tests: the MME's registration state and census stay
//! consistent under arbitrary event sequences.

use proptest::prelude::*;

use wearscope_devicedb::DeviceDb;
use wearscope_geo::SectorId;
use wearscope_mobilenet::Mme;
use wearscope_simtime::SimTime;
use wearscope_trace::UserId;

#[derive(Clone, Debug)]
enum Op {
    Attach { user: u64, sector: u32 },
    Move { user: u64, sector: u32 },
    Detach { user: u64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..8, 0u32..5).prop_map(|(user, sector)| Op::Attach { user, sector }),
        (0u64..8, 0u32..5).prop_map(|(user, sector)| Op::Move { user, sector }),
        (0u64..8).prop_map(|user| Op::Detach { user }),
    ]
}

proptest! {
    /// Under any event sequence: the census per-sector attachment counts sum
    /// to the number of registered devices, every count stays within the
    /// peak, and the log grows by exactly one record per event.
    #[test]
    fn mme_state_consistent(ops in prop::collection::vec(arb_op(), 0..200)) {
        let db = DeviceDb::standard();
        let imei = db.example_imei(db.wearable_tacs()[0], 1).as_u64();
        let mut mme = Mme::new(&db);
        let mut shadow: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
        for (i, op) in ops.iter().enumerate() {
            let t = SimTime::from_secs(i as u64);
            match *op {
                Op::Attach { user, sector } => {
                    mme.attach(t, UserId(user), imei, SectorId(sector));
                    shadow.insert(user, sector);
                }
                Op::Move { user, sector } => {
                    mme.sector_update(t, UserId(user), imei, SectorId(sector));
                    shadow.insert(user, sector);
                }
                Op::Detach { user } => {
                    mme.detach(t, UserId(user), imei);
                    shadow.remove(&user);
                }
            }
            // Registered count matches the shadow model.
            prop_assert_eq!(mme.registered_count(), shadow.len());
            // Census totals match: sum of per-sector current == registered.
            let census_total: u32 = (0..5).map(|s| mme.census().attached(s)).sum();
            prop_assert_eq!(census_total as usize, shadow.len());
            // Per-sector counts match the shadow model exactly.
            for s in 0..5u32 {
                let want = shadow.values().filter(|&&v| v == s).count() as u32;
                prop_assert_eq!(mme.census().attached(s), want);
                prop_assert!(mme.census().peak(s) >= mme.census().attached(s));
            }
        }
        // One log record per event.
        prop_assert_eq!(mme.log().len(), ops.len());
        // Log is time-ordered (events arrived in order).
        for w in mme.log().windows(2) {
            prop_assert!(w[0].timestamp <= w[1].timestamp);
        }
    }

    /// Current sector tracking agrees with the last attach/move per user.
    #[test]
    fn current_sector_is_last_write(ops in prop::collection::vec(arb_op(), 0..100)) {
        let db = DeviceDb::standard();
        let imei = db.example_imei(db.wearable_tacs()[0], 2).as_u64();
        let mut mme = Mme::new(&db);
        let mut shadow: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
        for (i, op) in ops.iter().enumerate() {
            let t = SimTime::from_secs(i as u64);
            match *op {
                Op::Attach { user, sector } | Op::Move { user, sector } => {
                    if matches!(op, Op::Attach { .. }) {
                        mme.attach(t, UserId(user), imei, SectorId(sector));
                    } else {
                        mme.sector_update(t, UserId(user), imei, SectorId(sector));
                    }
                    shadow.insert(user, sector);
                }
                Op::Detach { user } => {
                    mme.detach(t, UserId(user), imei);
                    shadow.remove(&user);
                }
            }
        }
        for user in 0..8u64 {
            let got = mme.current_sector(UserId(user), imei).map(|s| s.raw());
            prop_assert_eq!(got, shadow.get(&user).copied());
        }
    }
}
