//! The device model catalog.
//!
//! Mirrors the paper's setting: the SIM-enabled wearables in the studied
//! network are "primarily Android and Tizen-based wearables (mostly Samsung
//! and LG)"; the operator "does not yet support the SIM-enabled Apple
//! Watch 3". The comparison population is "mostly equipped with a
//! smartphone", and the Through-Device analysis fingerprints Fitbit/Xiaomi
//! trackers paired to phones.

use core::fmt;

/// Broad device class, the primary split of every analysis in the paper.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DeviceClass {
    /// A wearable with its own SIM and direct cellular connectivity.
    CellularWearable,
    /// A wearable without a SIM that relays via a paired smartphone
    /// (kept in the catalog for the Through-Device analysis; it never
    /// appears in MME logs itself).
    ThroughDeviceWearable,
    /// A smartphone.
    Smartphone,
    /// A cellular tablet.
    Tablet,
    /// A machine-to-machine module (metering, telematics, …).
    M2m,
}

impl DeviceClass {
    /// `true` for either wearable class.
    pub const fn is_wearable(self) -> bool {
        matches!(
            self,
            DeviceClass::CellularWearable | DeviceClass::ThroughDeviceWearable
        )
    }
}

impl fmt::Display for DeviceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DeviceClass::CellularWearable => "cellular-wearable",
            DeviceClass::ThroughDeviceWearable => "through-device-wearable",
            DeviceClass::Smartphone => "smartphone",
            DeviceClass::Tablet => "tablet",
            DeviceClass::M2m => "m2m",
        };
        f.write_str(s)
    }
}

/// Operating system family.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum DeviceOs {
    AndroidWear,
    Tizen,
    Android,
    Ios,
    WatchOs,
    Rtos,
}

impl fmt::Display for DeviceOs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DeviceOs::AndroidWear => "AndroidWear",
            DeviceOs::Tizen => "Tizen",
            DeviceOs::Android => "Android",
            DeviceOs::Ios => "iOS",
            DeviceOs::WatchOs => "watchOS",
            DeviceOs::Rtos => "RTOS",
        };
        f.write_str(s)
    }
}

/// One device model as known to the operator's device database.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceModel {
    /// Marketing name, e.g. "Gear S3 Frontier LTE".
    pub name: &'static str,
    /// Manufacturer, e.g. "Samsung".
    pub manufacturer: &'static str,
    /// Operating system family.
    pub os: DeviceOs,
    /// Device class.
    pub class: DeviceClass,
    /// Relative sales share *within its class*; used when assigning devices
    /// to synthetic subscribers. Shares need not sum to 1.
    pub market_share: f64,
}

/// The standard catalog used across examples, tests, and benches.
///
/// SIM-enabled wearables dominate with Samsung (Tizen) and LG (Android Wear)
/// models, matching Sec. 4.1 ("most users are using LG and Samsung
/// SIM-enabled watches").
pub fn standard_catalog() -> Vec<DeviceModel> {
    use DeviceClass::*;
    use DeviceOs::*;
    vec![
        // --- SIM-enabled (cellular) wearables -------------------------------
        DeviceModel {
            name: "Gear S2 Classic 3G",
            manufacturer: "Samsung",
            os: Tizen,
            class: CellularWearable,
            market_share: 0.18,
        },
        DeviceModel {
            name: "Gear S3 Frontier LTE",
            manufacturer: "Samsung",
            os: Tizen,
            class: CellularWearable,
            market_share: 0.34,
        },
        DeviceModel {
            name: "Gear S 3G",
            manufacturer: "Samsung",
            os: Tizen,
            class: CellularWearable,
            market_share: 0.08,
        },
        DeviceModel {
            name: "Watch Urbane 2nd Edition LTE",
            manufacturer: "LG",
            os: AndroidWear,
            class: CellularWearable,
            market_share: 0.22,
        },
        DeviceModel {
            name: "Watch Sport LTE",
            manufacturer: "LG",
            os: AndroidWear,
            class: CellularWearable,
            market_share: 0.10,
        },
        DeviceModel {
            name: "Huawei Watch 2 4G",
            manufacturer: "Huawei",
            os: AndroidWear,
            class: CellularWearable,
            market_share: 0.08,
        },
        // --- Through-device wearables (no SIM; relayed via phone) -----------
        DeviceModel {
            name: "Fitbit Charge 2",
            manufacturer: "Fitbit",
            os: Rtos,
            class: ThroughDeviceWearable,
            market_share: 0.30,
        },
        DeviceModel {
            name: "Mi Band 2",
            manufacturer: "Xiaomi",
            os: Rtos,
            class: ThroughDeviceWearable,
            market_share: 0.28,
        },
        DeviceModel {
            name: "Gear S3 Bluetooth",
            manufacturer: "Samsung",
            os: Tizen,
            class: ThroughDeviceWearable,
            market_share: 0.18,
        },
        DeviceModel {
            name: "Apple Watch Series 2",
            manufacturer: "Apple",
            os: WatchOs,
            class: ThroughDeviceWearable,
            market_share: 0.24,
        },
        // --- Smartphones (the "remaining customers" population) -------------
        DeviceModel {
            name: "Galaxy S8",
            manufacturer: "Samsung",
            os: Android,
            class: Smartphone,
            market_share: 0.16,
        },
        DeviceModel {
            name: "Galaxy S7",
            manufacturer: "Samsung",
            os: Android,
            class: Smartphone,
            market_share: 0.14,
        },
        DeviceModel {
            name: "Galaxy J5",
            manufacturer: "Samsung",
            os: Android,
            class: Smartphone,
            market_share: 0.12,
        },
        DeviceModel {
            name: "iPhone 7",
            manufacturer: "Apple",
            os: Ios,
            class: Smartphone,
            market_share: 0.15,
        },
        DeviceModel {
            name: "iPhone 6s",
            manufacturer: "Apple",
            os: Ios,
            class: Smartphone,
            market_share: 0.11,
        },
        DeviceModel {
            name: "P10 Lite",
            manufacturer: "Huawei",
            os: Android,
            class: Smartphone,
            market_share: 0.10,
        },
        DeviceModel {
            name: "Moto G5",
            manufacturer: "Motorola",
            os: Android,
            class: Smartphone,
            market_share: 0.08,
        },
        DeviceModel {
            name: "Xperia XA1",
            manufacturer: "Sony",
            os: Android,
            class: Smartphone,
            market_share: 0.06,
        },
        DeviceModel {
            name: "Redmi Note 4",
            manufacturer: "Xiaomi",
            os: Android,
            class: Smartphone,
            market_share: 0.08,
        },
        // --- Other SIM device classes present in a real network --------------
        DeviceModel {
            name: "Galaxy Tab A LTE",
            manufacturer: "Samsung",
            os: Android,
            class: Tablet,
            market_share: 0.6,
        },
        DeviceModel {
            name: "iPad Air 2 Cellular",
            manufacturer: "Apple",
            os: Ios,
            class: Tablet,
            market_share: 0.4,
        },
        DeviceModel {
            name: "Telemetry Module TM-200",
            manufacturer: "Telit",
            os: Rtos,
            class: M2m,
            market_share: 1.0,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_every_class() {
        let cat = standard_catalog();
        for class in [
            DeviceClass::CellularWearable,
            DeviceClass::ThroughDeviceWearable,
            DeviceClass::Smartphone,
            DeviceClass::Tablet,
            DeviceClass::M2m,
        ] {
            assert!(cat.iter().any(|m| m.class == class), "missing {class}");
        }
    }

    #[test]
    fn cellular_wearables_are_samsung_lg_dominated() {
        // Sec 4.1: "most users are using LG and Samsung SIM-enabled watches".
        let cat = standard_catalog();
        let share_of = |manufacturer: &str| -> f64 {
            cat.iter()
                .filter(|m| m.class == DeviceClass::CellularWearable)
                .filter(|m| m.manufacturer == manufacturer)
                .map(|m| m.market_share)
                .sum()
        };
        assert!(share_of("Samsung") + share_of("LG") > 0.8);
    }

    #[test]
    fn no_cellular_apple_watch() {
        // The operator in the paper does not support the Apple Watch 3.
        let cat = standard_catalog();
        assert!(!cat
            .iter()
            .any(|m| m.class == DeviceClass::CellularWearable && m.manufacturer == "Apple"));
    }

    #[test]
    fn wearable_shares_sum_to_one() {
        let cat = standard_catalog();
        let s: f64 = cat
            .iter()
            .filter(|m| m.class == DeviceClass::CellularWearable)
            .map(|m| m.market_share)
            .sum();
        assert!(
            (s - 1.0).abs() < 1e-9,
            "cellular wearable shares sum to {s}"
        );
        let s: f64 = cat
            .iter()
            .filter(|m| m.class == DeviceClass::ThroughDeviceWearable)
            .map(|m| m.market_share)
            .sum();
        assert!((s - 1.0).abs() < 1e-9, "through-device shares sum to {s}");
    }

    #[test]
    fn is_wearable_helper() {
        assert!(DeviceClass::CellularWearable.is_wearable());
        assert!(DeviceClass::ThroughDeviceWearable.is_wearable());
        assert!(!DeviceClass::Smartphone.is_wearable());
        assert!(!DeviceClass::M2m.is_wearable());
    }

    #[test]
    fn model_names_unique() {
        let cat = standard_catalog();
        let mut names: Vec<_> = cat.iter().map(|m| m.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), cat.len());
    }
}
