//! The operator *device database* vantage point.
//!
//! Section 3.2 of the paper identifies SIM-enabled wearables by (1) listing
//! every SIM-enabled wearable model sold in the country, (2) resolving each
//! model to its IMEI **TAC** ranges via the operator's device database, and
//! (3) searching those TACs in the MME and proxy logs. This crate implements
//! that machinery:
//!
//! * [`Imei`] — 15-digit IMEIs with structural validation and Luhn check
//!   digits, stored as a compact `u64`;
//! * [`Tac`] — 8-digit Type Allocation Codes;
//! * [`DeviceModel`] / [`DeviceClass`] / [`DeviceOs`] — the model catalog,
//!   including the Samsung/LG/Huawei cellular watches the paper observes
//!   (the studied operator did not yet support the Apple Watch 3);
//! * [`DeviceDb`] — TAC → model lookup, IMEI allocation, and the
//!   wearable-TAC search used by the identification pipeline.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod catalog;
pub mod db;
pub mod imei;

pub use catalog::{standard_catalog, DeviceClass, DeviceModel, DeviceOs};
pub use db::{DeviceDb, DeviceRecord, ModelId};
pub use imei::{Imei, ImeiError, Tac};
