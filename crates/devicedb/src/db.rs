//! The device database: TAC ranges, IMEI allocation, and model lookup.

use std::collections::HashMap;

use rand::Rng;

use crate::catalog::{DeviceClass, DeviceModel, DeviceOs};
use crate::imei::{Imei, Tac};

/// Index of a model within a [`DeviceDb`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ModelId(pub u16);

/// What a device-database lookup returns for an IMEI: the binding of
/// deviceID to model, OS, and manufacturer described in Sec. 3.1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeviceRecord {
    /// The model's id in this database.
    pub model_id: ModelId,
    /// Marketing name.
    pub model: &'static str,
    /// Manufacturer name.
    pub manufacturer: &'static str,
    /// OS family.
    pub os: DeviceOs,
    /// Device class.
    pub class: DeviceClass,
}

/// The operator's device database.
///
/// Each model owns one or more TACs (real models often span several TACs for
/// regional variants; we allocate `tacs_per_model` each). Lookup strips the
/// serial and check digit and resolves the TAC.
///
/// # Examples
/// ```
/// use wearscope_devicedb::{standard_catalog, DeviceDb, DeviceClass};
/// let db = DeviceDb::with_catalog(standard_catalog());
/// let tac = db.wearable_tacs()[0];
/// let imei = db.example_imei(tac, 42);
/// let rec = db.lookup(imei).unwrap();
/// assert_eq!(rec.class, DeviceClass::CellularWearable);
/// assert!(db.is_sim_wearable(imei));
/// ```
#[derive(Clone, Debug)]
pub struct DeviceDb {
    models: Vec<DeviceModel>,
    tac_to_model: HashMap<Tac, ModelId>,
    tacs_by_model: Vec<Vec<Tac>>,
}

/// First TAC handed out by [`DeviceDb::with_catalog`]. Chosen inside the
/// `35xxxxxx` reporting-body range most real European devices use.
const TAC_BASE: u32 = 35_200_000;
/// TACs allocated per model.
const TACS_PER_MODEL: u32 = 2;

impl DeviceDb {
    /// Builds a database assigning consecutive TACs to each catalog model.
    pub fn with_catalog(models: Vec<DeviceModel>) -> DeviceDb {
        let mut tac_to_model = HashMap::new();
        let mut tacs_by_model = Vec::with_capacity(models.len());
        for (i, _) in models.iter().enumerate() {
            let mut tacs = Vec::with_capacity(TACS_PER_MODEL as usize);
            for k in 0..TACS_PER_MODEL {
                let tac = Tac::new(TAC_BASE + (i as u32) * TACS_PER_MODEL + k)
                    .expect("TAC_BASE keeps allocations in range");
                tac_to_model.insert(tac, ModelId(i as u16));
                tacs.push(tac);
            }
            tacs_by_model.push(tacs);
        }
        DeviceDb {
            models,
            tac_to_model,
            tacs_by_model,
        }
    }

    /// The standard database over [`crate::standard_catalog`].
    pub fn standard() -> DeviceDb {
        DeviceDb::with_catalog(crate::catalog::standard_catalog())
    }

    /// Number of models.
    pub fn num_models(&self) -> usize {
        self.models.len()
    }

    /// The model with id `id`.
    pub fn model(&self, id: ModelId) -> Option<&DeviceModel> {
        self.models.get(id.0 as usize)
    }

    /// Resolves an IMEI to its device record via the TAC, or `None` for
    /// devices from other operators/regions not in this database.
    pub fn lookup(&self, imei: Imei) -> Option<DeviceRecord> {
        let id = *self.tac_to_model.get(&imei.tac())?;
        let m = &self.models[id.0 as usize];
        Some(DeviceRecord {
            model_id: id,
            model: m.name,
            manufacturer: m.manufacturer,
            os: m.os,
            class: m.class,
        })
    }

    /// `true` if the IMEI belongs to a SIM-enabled (cellular) wearable —
    /// the identification predicate of Sec. 3.2.
    pub fn is_sim_wearable(&self, imei: Imei) -> bool {
        self.lookup(imei)
            .is_some_and(|r| r.class == DeviceClass::CellularWearable)
    }

    /// All TACs belonging to SIM-enabled wearable models — the "list of
    /// wearable IMEI ranges" the paper searches the logs for.
    pub fn wearable_tacs(&self) -> Vec<Tac> {
        self.tacs_of_class(DeviceClass::CellularWearable)
    }

    /// All TACs belonging to models of the given class.
    pub fn tacs_of_class(&self, class: DeviceClass) -> Vec<Tac> {
        let mut out = Vec::new();
        for (i, m) in self.models.iter().enumerate() {
            if m.class == class {
                out.extend(self.tacs_by_model[i].iter().copied());
            }
        }
        out
    }

    /// The TACs allocated to one model.
    pub fn tacs_of_model(&self, id: ModelId) -> &[Tac] {
        &self.tacs_by_model[id.0 as usize]
    }

    /// Picks a model of `class` with probability proportional to market
    /// share; `None` if the class has no models.
    pub fn sample_model<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        class: DeviceClass,
    ) -> Option<ModelId> {
        let candidates: Vec<(usize, f64)> = self
            .models
            .iter()
            .enumerate()
            .filter(|(_, m)| m.class == class)
            .map(|(i, m)| (i, m.market_share))
            .collect();
        let total: f64 = candidates.iter().map(|(_, w)| w).sum();
        if total <= 0.0 {
            return None;
        }
        let mut x = rng.random::<f64>() * total;
        for (i, w) in &candidates {
            if x < *w {
                return Some(ModelId(*i as u16));
            }
            x -= w;
        }
        candidates.last().map(|(i, _)| ModelId(*i as u16))
    }

    /// Allocates a fresh IMEI for model `id` using `serial` as the per-unit
    /// number (callers keep serials unique per TAC).
    ///
    /// # Panics
    /// Panics if `id` is out of range or `serial >= 10^6 · tacs_per_model`.
    pub fn allocate_imei(&self, id: ModelId, serial: u32) -> Imei {
        let tacs = &self.tacs_by_model[id.0 as usize];
        let tac = tacs[(serial / 1_000_000) as usize % tacs.len()];
        Imei::from_parts(tac, serial % 1_000_000).expect("serial bounded above")
    }

    /// A valid IMEI under `tac` with the given serial (for tests/examples).
    pub fn example_imei(&self, tac: Tac, serial: u32) -> Imei {
        Imei::from_parts(tac, serial % 1_000_000).expect("serial reduced into range")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::standard_catalog;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lookup_roundtrip_for_every_model() {
        let db = DeviceDb::standard();
        for i in 0..db.num_models() {
            let id = ModelId(i as u16);
            let imei = db.allocate_imei(id, 123);
            let rec = db.lookup(imei).expect("allocated IMEI must resolve");
            assert_eq!(rec.model_id, id);
            assert_eq!(rec.model, db.model(id).unwrap().name);
        }
    }

    #[test]
    fn unknown_tac_is_none() {
        let db = DeviceDb::standard();
        let foreign = Imei::from_parts(Tac::new(99_000_000).unwrap(), 1).unwrap();
        assert!(db.lookup(foreign).is_none());
        assert!(!db.is_sim_wearable(foreign));
    }

    #[test]
    fn wearable_tacs_match_class() {
        let db = DeviceDb::standard();
        let tacs = db.wearable_tacs();
        let n_wearable_models = standard_catalog()
            .iter()
            .filter(|m| m.class == DeviceClass::CellularWearable)
            .count();
        assert_eq!(tacs.len(), n_wearable_models * TACS_PER_MODEL as usize);
        for tac in tacs {
            let imei = db.example_imei(tac, 5);
            assert!(db.is_sim_wearable(imei));
        }
    }

    #[test]
    fn tacs_are_disjoint_across_models() {
        let db = DeviceDb::standard();
        let mut all: Vec<Tac> = (0..db.num_models())
            .flat_map(|i| db.tacs_of_model(ModelId(i as u16)).to_vec())
            .collect();
        let before = all.len();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), before);
    }

    #[test]
    fn sampling_respects_market_share() {
        let db = DeviceDb::standard();
        let mut rng = StdRng::seed_from_u64(17);
        let mut counts: HashMap<ModelId, usize> = HashMap::new();
        let n = 30_000;
        for _ in 0..n {
            let id = db
                .sample_model(&mut rng, DeviceClass::CellularWearable)
                .unwrap();
            *counts.entry(id).or_default() += 1;
        }
        for (id, count) in counts {
            let share = db.model(id).unwrap().market_share;
            let observed = count as f64 / n as f64;
            assert!(
                (observed - share).abs() < 0.02,
                "{:?}: observed {observed}, share {share}",
                db.model(id).unwrap().name
            );
        }
    }

    #[test]
    fn allocate_spreads_over_model_tacs() {
        let db = DeviceDb::standard();
        let id = ModelId(0);
        let a = db.allocate_imei(id, 10);
        let b = db.allocate_imei(id, 1_000_010);
        assert_ne!(a.tac(), b.tac());
        assert_eq!(a.serial(), b.serial());
        assert_eq!(db.lookup(a).unwrap().model_id, id);
        assert_eq!(db.lookup(b).unwrap().model_id, id);
    }

    #[test]
    fn sample_missing_class_is_none() {
        let db = DeviceDb::with_catalog(vec![]);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(db.sample_model(&mut rng, DeviceClass::M2m).is_none());
    }
}
