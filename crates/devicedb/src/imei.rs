//! IMEI and TAC types.
//!
//! An IMEI is 15 decimal digits: an 8-digit Type Allocation Code (TAC)
//! identifying the device model, a 6-digit per-unit serial, and a Luhn check
//! digit. The operator's device database keys on the TAC, which is exactly
//! how the paper maps device models to traffic.

use core::fmt;
use core::str::FromStr;

/// Errors produced when constructing or parsing an [`Imei`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ImeiError {
    /// The string was not exactly 15 ASCII digits.
    Malformed,
    /// The Luhn check digit did not match.
    BadCheckDigit,
    /// A numeric component was out of range (TAC ≥ 10⁸ or serial ≥ 10⁶).
    OutOfRange,
}

impl fmt::Display for ImeiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImeiError::Malformed => write!(f, "IMEI must be exactly 15 decimal digits"),
            ImeiError::BadCheckDigit => write!(f, "IMEI Luhn check digit mismatch"),
            ImeiError::OutOfRange => write!(f, "TAC or serial component out of range"),
        }
    }
}

impl std::error::Error for ImeiError {}

/// An 8-digit Type Allocation Code.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tac(u32);

impl Tac {
    /// Creates a TAC from its numeric value.
    ///
    /// # Errors
    /// Returns [`ImeiError::OutOfRange`] if `value >= 10^8`.
    pub fn new(value: u32) -> Result<Tac, ImeiError> {
        if value >= 100_000_000 {
            Err(ImeiError::OutOfRange)
        } else {
            Ok(Tac(value))
        }
    }

    /// The numeric TAC value.
    #[inline]
    pub const fn value(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Tac {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TAC({:08})", self.0)
    }
}

impl fmt::Display for Tac {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:08}", self.0)
    }
}

/// A validated 15-digit IMEI.
///
/// # Examples
/// ```
/// use wearscope_devicedb::{Imei, Tac};
/// let tac = Tac::new(35_411_711).unwrap();
/// let imei = Imei::from_parts(tac, 1234).unwrap();
/// assert_eq!(imei.tac(), tac);
/// assert_eq!(imei.serial(), 1234);
/// let s = imei.to_string();
/// assert_eq!(s.len(), 15);
/// assert_eq!(s.parse::<Imei>().unwrap(), imei);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Imei(u64);

impl Imei {
    /// Builds an IMEI from TAC and serial, computing the Luhn check digit.
    ///
    /// # Errors
    /// Returns [`ImeiError::OutOfRange`] if `serial >= 10^6`.
    pub fn from_parts(tac: Tac, serial: u32) -> Result<Imei, ImeiError> {
        if serial >= 1_000_000 {
            return Err(ImeiError::OutOfRange);
        }
        let body = tac.0 as u64 * 1_000_000 + serial as u64; // 14 digits
        let check = luhn_check_digit(body);
        Ok(Imei(body * 10 + check as u64))
    }

    /// Interprets a raw 15-digit value as an IMEI, validating the check digit.
    ///
    /// # Errors
    /// [`ImeiError::OutOfRange`] for values with more than 15 digits,
    /// [`ImeiError::BadCheckDigit`] if the Luhn digit is inconsistent.
    pub fn from_u64(value: u64) -> Result<Imei, ImeiError> {
        if value >= 1_000_000_000_000_000 {
            return Err(ImeiError::OutOfRange);
        }
        if luhn_check_digit(value / 10) as u64 != value % 10 {
            return Err(ImeiError::BadCheckDigit);
        }
        Ok(Imei(value))
    }

    /// The raw 15-digit value.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The 8-digit TAC prefix.
    #[inline]
    pub const fn tac(self) -> Tac {
        Tac((self.0 / 10_000_000) as u32)
    }

    /// The 6-digit serial.
    #[inline]
    pub const fn serial(self) -> u32 {
        ((self.0 / 10) % 1_000_000) as u32
    }

    /// The Luhn check digit.
    #[inline]
    pub const fn check_digit(self) -> u8 {
        (self.0 % 10) as u8
    }
}

impl FromStr for Imei {
    type Err = ImeiError;

    fn from_str(s: &str) -> Result<Imei, ImeiError> {
        if s.len() != 15 || !s.bytes().all(|b| b.is_ascii_digit()) {
            return Err(ImeiError::Malformed);
        }
        let value: u64 = s.parse().map_err(|_| ImeiError::Malformed)?;
        Imei::from_u64(value)
    }
}

impl fmt::Debug for Imei {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IMEI({:015})", self.0)
    }
}

impl fmt::Display for Imei {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:015}", self.0)
    }
}

/// Computes the Luhn check digit for a 14-digit IMEI body.
///
/// Digits are numbered from the right of the *body*; the standard doubles
/// every second digit starting with the rightmost (which sits in an even
/// position of the final 15-digit string).
fn luhn_check_digit(body: u64) -> u8 {
    let mut sum: u64 = 0;
    let mut n = body;
    let mut double = true; // rightmost body digit is doubled
    for _ in 0..14 {
        let d = n % 10;
        n /= 10;
        let v = if double { d * 2 } else { d };
        sum += if v > 9 { v - 9 } else { v };
        double = !double;
    }
    ((10 - (sum % 10)) % 10) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_luhn_vector() {
        // Classic reference IMEI: body 49015420323751 → check digit 8.
        assert_eq!(luhn_check_digit(49_015_420_323_751), 8);
        let imei = Imei::from_u64(490_154_203_237_518).unwrap();
        assert_eq!(imei.check_digit(), 8);
        assert_eq!(imei.tac().value(), 49_015_420);
        assert_eq!(imei.serial(), 323_751);
    }

    #[test]
    fn from_parts_roundtrips_fields() {
        let tac = Tac::new(35_000_001).unwrap();
        for serial in [0u32, 1, 999_999, 123_456] {
            let imei = Imei::from_parts(tac, serial).unwrap();
            assert_eq!(imei.tac(), tac);
            assert_eq!(imei.serial(), serial);
            // Value re-validates.
            assert_eq!(Imei::from_u64(imei.as_u64()).unwrap(), imei);
        }
    }

    #[test]
    fn bad_check_digit_rejected() {
        let good = Imei::from_parts(Tac::new(35_000_001).unwrap(), 42).unwrap();
        let tampered = good.as_u64() ^ 1; // flip the low bit of the check digit
        assert_eq!(Imei::from_u64(tampered), Err(ImeiError::BadCheckDigit));
    }

    #[test]
    fn out_of_range_rejected() {
        assert_eq!(Tac::new(100_000_000).unwrap_err(), ImeiError::OutOfRange);
        let tac = Tac::new(35_000_001).unwrap();
        assert_eq!(
            Imei::from_parts(tac, 1_000_000).unwrap_err(),
            ImeiError::OutOfRange
        );
        assert_eq!(
            Imei::from_u64(1_000_000_000_000_000).unwrap_err(),
            ImeiError::OutOfRange
        );
    }

    #[test]
    fn parse_and_display() {
        let imei = Imei::from_parts(Tac::new(1).unwrap(), 7).unwrap();
        let s = imei.to_string();
        assert_eq!(s.len(), 15);
        assert!(s.starts_with("00000001000007"));
        assert_eq!(s.parse::<Imei>().unwrap(), imei);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert_eq!("123".parse::<Imei>(), Err(ImeiError::Malformed));
        assert_eq!("49015420323751x".parse::<Imei>(), Err(ImeiError::Malformed));
        assert_eq!(
            "4901542032375189".parse::<Imei>(),
            Err(ImeiError::Malformed)
        );
    }

    #[test]
    fn check_digit_detects_single_digit_errors() {
        // Luhn's guarantee: any single-digit substitution invalidates.
        let imei = Imei::from_parts(Tac::new(35_411_711).unwrap(), 555_123).unwrap();
        let s = imei.to_string();
        for pos in 0..15 {
            for d in b'0'..=b'9' {
                let mut bytes = s.clone().into_bytes();
                if bytes[pos] == d {
                    continue;
                }
                bytes[pos] = d;
                let mutated = String::from_utf8(bytes).unwrap();
                assert!(
                    mutated.parse::<Imei>().is_err(),
                    "substitution at {pos} to {} not caught",
                    d as char
                );
            }
        }
    }

    #[test]
    fn tac_display_pads() {
        assert_eq!(Tac::new(42).unwrap().to_string(), "00000042");
    }
}
