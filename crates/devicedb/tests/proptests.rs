//! Property-based tests for IMEI structure and device-DB lookup.

use proptest::prelude::*;
use wearscope_devicedb::{DeviceDb, Imei, ImeiError, ModelId, Tac};

proptest! {
    /// from_parts → field extraction → re-validation round-trips.
    #[test]
    fn imei_roundtrip(tac in 0u32..100_000_000, serial in 0u32..1_000_000) {
        let tac = Tac::new(tac).unwrap();
        let imei = Imei::from_parts(tac, serial).unwrap();
        prop_assert_eq!(imei.tac(), tac);
        prop_assert_eq!(imei.serial(), serial);
        prop_assert_eq!(Imei::from_u64(imei.as_u64()).unwrap(), imei);
        // String round-trip.
        let s = imei.to_string();
        prop_assert_eq!(s.len(), 15);
        prop_assert_eq!(s.parse::<Imei>().unwrap(), imei);
    }

    /// Exactly one of the ten candidate check digits validates.
    #[test]
    fn unique_check_digit(body in 0u64..100_000_000_000_000u64) {
        let valid: Vec<u64> = (0..10)
            .map(|d| body * 10 + d)
            .filter(|&v| Imei::from_u64(v).is_ok())
            .collect();
        prop_assert_eq!(valid.len(), 1);
    }

    /// Transposing two adjacent distinct, non-equal-mod-9 digits breaks the
    /// check (the classic Luhn guarantee, minus its known 09/90 blind spot).
    #[test]
    fn adjacent_transposition_detected(
        tac in 0u32..100_000_000,
        serial in 0u32..1_000_000,
        pos in 0usize..13,
    ) {
        let imei = Imei::from_parts(Tac::new(tac).unwrap(), serial).unwrap();
        let s = imei.to_string();
        let b = s.as_bytes();
        let (x, y) = (b[pos], b[pos + 1]);
        prop_assume!(x != y);
        let (dx, dy) = ((x - b'0') as i32, (y - b'0') as i32);
        prop_assume!(!((dx == 0 && dy == 9) || (dx == 9 && dy == 0)));
        let mut t = s.into_bytes();
        t.swap(pos, pos + 1);
        let mutated = String::from_utf8(t).unwrap();
        prop_assert!(mutated.parse::<Imei>().is_err());
    }

    /// Every IMEI allocated by the DB resolves to the model it was allocated
    /// for, across arbitrary serials.
    #[test]
    fn db_allocation_resolves(model in 0u16..22, serial in 0u32..2_000_000) {
        let db = DeviceDb::standard();
        prop_assume!((model as usize) < db.num_models());
        let id = ModelId(model);
        let imei = db.allocate_imei(id, serial);
        let rec = db.lookup(imei).unwrap();
        prop_assert_eq!(rec.model_id, id);
        prop_assert_eq!(rec.class, db.model(id).unwrap().class);
    }

    /// Parsing garbage never panics and classifies the error sensibly.
    #[test]
    fn parse_never_panics(s in "\\PC{0,20}") {
        match s.parse::<Imei>() {
            Ok(imei) => prop_assert_eq!(imei.to_string(), s),
            Err(e) => prop_assert!(matches!(
                e,
                ImeiError::Malformed | ImeiError::BadCheckDigit | ImeiError::OutOfRange
            )),
        }
    }
}
