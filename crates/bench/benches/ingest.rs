//! Parallel-ingest throughput: the sharded worker-pool engine vs the
//! sequential fold, the byte-range parallel file loader, and the cost of
//! the quarantine path on a 1%-corrupted world.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use wearscope_bench::{ctx, small_world};
use wearscope_core::merge::CoreAggregates;
use wearscope_faults::{corrupt_world, FaultSpec};
use wearscope_ingest::{load_store_parallel, load_store_resilient, IngestEngine, IngestOptions};

fn worker_count_candidates() -> Vec<usize> {
    let cpus = wearscope_ingest::default_workers();
    let mut counts = vec![1, 2, cpus];
    counts.sort_unstable();
    counts.dedup();
    counts
}

fn engine_scaling(c: &mut Criterion) {
    let world = small_world();
    let study = ctx(world);
    let records = (world.store.proxy().len() + world.store.mme().len()) as u64;

    let mut group = c.benchmark_group("ingest-engine");
    group.sample_size(10);
    group.throughput(Throughput::Elements(records));
    group.bench_function("sequential", |b| {
        b.iter(|| CoreAggregates::sequential(black_box(&study)))
    });
    for workers in worker_count_candidates() {
        group.bench_with_input(
            BenchmarkId::new("workers", workers),
            &workers,
            |b, &workers| {
                let engine = IngestEngine::new(workers);
                b.iter(|| engine.compute(black_box(&study)).unwrap())
            },
        );
    }
    group.finish();
}

fn parallel_load(c: &mut Criterion) {
    let world = small_world();
    let records = (world.store.proxy().len() + world.store.mme().len()) as u64;
    let dir = std::env::temp_dir().join(format!("wearscope-bench-load-{}", std::process::id()));
    world.save(&dir).expect("saving bench world");

    let mut group = c.benchmark_group("ingest-load");
    group.sample_size(10);
    group.throughput(Throughput::Elements(records));
    for workers in worker_count_candidates() {
        group.bench_with_input(
            BenchmarkId::new("workers", workers),
            &workers,
            |b, &workers| b.iter(|| load_store_parallel(black_box(&dir), workers).unwrap()),
        );
    }
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

/// Quarantine-path overhead: resilient load of a clean world vs the same
/// world corrupted at ~1% per line. Tracked in EXPERIMENTS.md.
fn corrupted_load(c: &mut Criterion) {
    let world = small_world();
    let records = (world.store.proxy().len() + world.store.mme().len()) as u64;
    let workers = wearscope_ingest::default_workers();

    let clean_dir =
        std::env::temp_dir().join(format!("wearscope-bench-clean-{}", std::process::id()));
    world.save(&clean_dir).expect("saving clean bench world");
    let dirty_dir =
        std::env::temp_dir().join(format!("wearscope-bench-dirty-{}", std::process::id()));
    world.save(&dirty_dir).expect("saving dirty bench world");
    let spec: FaultSpec = "bitflip=0.004,dup=0.002,reorder=0.002,badimei=0.002"
        .parse()
        .expect("spec");
    corrupt_world(&dirty_dir, 3, &spec).expect("corrupting bench world");

    let mut group = c.benchmark_group("ingest-load-corrupted");
    group.sample_size(10);
    group.throughput(Throughput::Elements(records));
    for (label, dir) in [("clean", &clean_dir), ("corrupted-1pct", &dirty_dir)] {
        let opts = IngestOptions::for_world(dir).with_max_error_rate(0.05);
        group.bench_function(label, |b| {
            b.iter(|| load_store_resilient(black_box(dir), workers, &opts).unwrap())
        });
    }
    group.finish();
    std::fs::remove_dir_all(&clean_dir).ok();
    std::fs::remove_dir_all(&dirty_dir).ok();
}

criterion_group!(benches, engine_scaling, parallel_load, corrupted_load);
criterion_main!(benches);
