//! Parallel-ingest throughput: the sharded worker-pool engine vs the
//! sequential fold, and the byte-range parallel file loader.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use wearscope_bench::{ctx, small_world};
use wearscope_core::merge::CoreAggregates;
use wearscope_ingest::{load_store_parallel, IngestEngine};

fn worker_count_candidates() -> Vec<usize> {
    let cpus = wearscope_ingest::default_workers();
    let mut counts = vec![1, 2, cpus];
    counts.sort_unstable();
    counts.dedup();
    counts
}

fn engine_scaling(c: &mut Criterion) {
    let world = small_world();
    let study = ctx(world);
    let records = (world.store.proxy().len() + world.store.mme().len()) as u64;

    let mut group = c.benchmark_group("ingest-engine");
    group.sample_size(10);
    group.throughput(Throughput::Elements(records));
    group.bench_function("sequential", |b| {
        b.iter(|| CoreAggregates::sequential(black_box(&study)))
    });
    for workers in worker_count_candidates() {
        group.bench_with_input(
            BenchmarkId::new("workers", workers),
            &workers,
            |b, &workers| {
                let engine = IngestEngine::new(workers);
                b.iter(|| engine.compute(black_box(&study)))
            },
        );
    }
    group.finish();
}

fn parallel_load(c: &mut Criterion) {
    let world = small_world();
    let records = (world.store.proxy().len() + world.store.mme().len()) as u64;
    let dir = std::env::temp_dir().join(format!("wearscope-bench-load-{}", std::process::id()));
    world.save(&dir).expect("saving bench world");

    let mut group = c.benchmark_group("ingest-load");
    group.sample_size(10);
    group.throughput(Throughput::Elements(records));
    for workers in worker_count_candidates() {
        group.bench_with_input(
            BenchmarkId::new("workers", workers),
            &workers,
            |b, &workers| b.iter(|| load_store_parallel(black_box(&dir), workers).unwrap()),
        );
    }
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, engine_scaling, parallel_load);
criterion_main!(benches);
