//! Substrate throughput benches: world generation, log codec, store
//! operations, and the classifier — the moving parts underneath every
//! figure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use wearscope_appdb::{AppCatalog, SniClassifier};
use wearscope_bench::small_world;
use wearscope_synthpop::{generate, ScenarioConfig};
use wearscope_trace::{binary, LogReader, LogWriter, ProxyRecord, TraceStore, TsvRecord};

fn generation_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("generation");
    group.sample_size(10);
    for users in [50u32, 150, 400] {
        group.bench_with_input(BenchmarkId::new("users", users), &users, |b, &users| {
            let mut config = ScenarioConfig::compact(2000 + u64::from(users));
            config.wearable_users = users;
            config.comparison_users = users;
            config.through_device_users = users / 4;
            config.workers = 1;
            b.iter(|| generate(black_box(&config)))
        });
    }
    // Ablation-adjacent: worker scaling on a fixed population.
    for workers in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("workers", workers),
            &workers,
            |b, &workers| {
                let mut config = ScenarioConfig::compact(3000);
                config.wearable_users = 300;
                config.comparison_users = 300;
                config.through_device_users = 80;
                config.workers = workers;
                b.iter(|| generate(black_box(&config)))
            },
        );
    }
    group.finish();
}

fn codec_throughput(c: &mut Criterion) {
    let world = small_world();
    let records: Vec<ProxyRecord> = world.store.proxy().iter().take(50_000).cloned().collect();
    let mut encoded = Vec::new();
    {
        let mut w = LogWriter::new(&mut encoded);
        for r in &records {
            w.write(r).unwrap();
        }
        w.flush().unwrap();
    }
    let mut group = c.benchmark_group("codec");
    group.throughput(Throughput::Elements(records.len() as u64));
    group.bench_function("encode_proxy", |b| {
        b.iter(|| {
            let mut out = 0usize;
            for r in &records {
                out += black_box(r.to_line()).len();
            }
            out
        })
    });
    group.throughput(Throughput::Bytes(encoded.len() as u64));
    group.bench_function("decode_proxy", |b| {
        b.iter(|| {
            LogReader::<_, ProxyRecord>::new(black_box(encoded.as_slice()))
                .collect::<Result<Vec<_>, _>>()
                .unwrap()
                .len()
        })
    });
    // Binary archive codec, for comparison with the TSV interchange codec.
    let framed = binary::encode_all(&records);
    group.throughput(Throughput::Elements(records.len() as u64));
    group.bench_function("encode_proxy_binary", |b| {
        b.iter(|| binary::encode_all(black_box(&records)).len())
    });
    group.throughput(Throughput::Bytes(framed.len() as u64));
    group.bench_function("decode_proxy_binary", |b| {
        b.iter(|| {
            binary::decode_all::<ProxyRecord>(black_box(framed.clone()))
                .unwrap()
                .len()
        })
    });
    group.finish();
}

fn store_operations(c: &mut Criterion) {
    let world = small_world();
    let proxy: Vec<ProxyRecord> = world.store.proxy().to_vec();
    let mme = world.store.mme().to_vec();
    let mut group = c.benchmark_group("store");
    group.sample_size(20);
    group.bench_function("from_records_sort", |b| {
        b.iter(|| TraceStore::from_records(black_box(proxy.clone()), black_box(mme.clone())))
    });
    let store = TraceStore::from_records(proxy, mme);
    let detail = world.config.window.detailed();
    group.bench_function("range_query", |b| {
        b.iter(|| {
            let slice = store.proxy_in(black_box(detail));
            slice.len()
        })
    });
    group.finish();
}

fn classifier_throughput(c: &mut Criterion) {
    let catalog = AppCatalog::standard();
    let classifier = SniClassifier::build(&catalog);
    let world = small_world();
    let hosts: Vec<&str> = world
        .store
        .proxy()
        .iter()
        .take(20_000)
        .map(|r| r.host.as_str())
        .collect();
    let mut group = c.benchmark_group("classifier");
    group.throughput(Throughput::Elements(hosts.len() as u64));
    group.bench_function("classify_trace_hosts", |b| {
        b.iter(|| {
            hosts
                .iter()
                .filter(|h| classifier.classify(black_box(h)).is_some())
                .count()
        })
    });
    group.bench_function("build_classifier", |b| {
        b.iter(|| SniClassifier::build(black_box(&catalog)))
    });
    group.finish();
}

criterion_group!(
    pipeline,
    generation_scaling,
    codec_throughput,
    store_operations,
    classifier_throughput
);
criterion_main!(pipeline);
