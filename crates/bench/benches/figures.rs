//! One criterion group per paper figure: measures the analysis pass that
//! regenerates it from the logs. Every table and figure of the paper's
//! evaluation has a bench target here (see DESIGN.md's experiment index).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use wearscope_bench::{ctx, medium_world};
use wearscope_core::activity::{
    self, ActivityCorrelation, ActivitySpans, HourlyProfile, TransactionStats,
};
use wearscope_core::adoption::{AdoptionTrend, CohortRetention, DataActiveShare, RetentionCurves};
use wearscope_core::apps::{AppPopularity, AppUsage, CategoryPopularity, InstallStats};
use wearscope_core::compare::{self, OwnerVsRest, WearableShare};
use wearscope_core::devices::DeviceMix;
use wearscope_core::mobility::{Displacement, LocationEntropy, MobilityActivity, MobilityIndex};
use wearscope_core::quality::DataQualityReport;
use wearscope_core::sessions::{self, PerUsage};
use wearscope_core::takeaways::Takeaways;
use wearscope_core::thirdparty::DomainBreakdown;
use wearscope_core::through_device::ThroughDeviceReport;
use wearscope_core::weekly::WeeklyPattern;

fn fig2_adoption(c: &mut Criterion) {
    let world = medium_world();
    let context = ctx(world);
    c.bench_function("fig2a_adoption_trend", |b| {
        b.iter(|| AdoptionTrend::compute(black_box(&world.summaries.mme), &context.window))
    });
    c.bench_function("fig2b_cohort_retention", |b| {
        b.iter(|| CohortRetention::compute(black_box(&world.summaries.mme), &context.window))
    });
    c.bench_function("s41_data_active_share", |b| {
        b.iter(|| {
            DataActiveShare::compute(
                black_box(&world.summaries.mme),
                &world.summaries.wearable_traffic,
                &context.window,
            )
        })
    });
    c.bench_function("retention_curves", |b| {
        b.iter(|| RetentionCurves::compute(black_box(&world.summaries.mme), &context.window))
    });
}

fn fig3_activity(c: &mut Criterion) {
    let world = medium_world();
    let context = ctx(world);
    let act = activity::user_activity(&context);
    c.bench_function("fig3a_hourly_profile", |b| {
        b.iter(|| HourlyProfile::compute(black_box(&context)))
    });
    c.bench_function("fig3b_activity_spans", |b| {
        b.iter(|| ActivitySpans::compute(&context, black_box(&act)))
    });
    c.bench_function("fig3c_transaction_stats", |b| {
        b.iter(|| TransactionStats::compute(&context, black_box(&act)))
    });
    c.bench_function("fig3d_activity_correlation", |b| {
        b.iter(|| ActivityCorrelation::compute(black_box(&act)))
    });
}

fn fig4_compare_mobility(c: &mut Criterion) {
    let world = medium_world();
    let context = ctx(world);
    let traffic = compare::user_traffic(&context);
    let mobility = MobilityIndex::build(&context);
    let act = activity::user_activity(&context);
    c.bench_function("fig4a_owner_vs_rest", |b| {
        b.iter(|| OwnerVsRest::compute(&context, black_box(&traffic)))
    });
    c.bench_function("fig4b_wearable_share", |b| {
        b.iter(|| WearableShare::compute(&context, black_box(&traffic)))
    });
    c.bench_function("fig4c_mobility_index_and_displacement", |b| {
        b.iter(|| {
            let index = MobilityIndex::build(black_box(&context));
            Displacement::compute(&context, &index)
        })
    });
    c.bench_function("s44_location_entropy", |b| {
        b.iter(|| LocationEntropy::compute(&context, black_box(&mobility)))
    });
    c.bench_function("fig4d_mobility_activity", |b| {
        b.iter(|| MobilityActivity::compute(&context, black_box(&mobility), &act))
    });
}

fn fig567_apps(c: &mut Criterion) {
    let world = medium_world();
    let context = ctx(world);
    let attributed = sessions::attribute_transactions(&context);
    let sess = sessions::sessionize(&attributed);
    c.bench_function("s33_attribute_transactions", |b| {
        b.iter(|| sessions::attribute_transactions(black_box(&context)))
    });
    c.bench_function("fig5a_app_popularity", |b| {
        b.iter(|| AppPopularity::compute(black_box(&attributed)))
    });
    c.bench_function("fig5b_app_usage", |b| {
        b.iter(|| AppUsage::compute(black_box(&sess)))
    });
    c.bench_function("fig6_category_popularity", |b| {
        let pop = AppPopularity::compute(&attributed);
        let usage = AppUsage::compute(&sess);
        b.iter(|| CategoryPopularity::compute(&context, black_box(&pop), &usage))
    });
    c.bench_function("fig7_sessionize_and_per_usage", |b| {
        b.iter(|| {
            let s = sessions::sessionize(black_box(&attributed));
            PerUsage::compute(&s)
        })
    });
    c.bench_function("s43_install_stats", |b| {
        b.iter(|| InstallStats::compute(black_box(&attributed)))
    });
}

fn fig8_and_sec6(c: &mut Criterion) {
    let world = medium_world();
    let context = ctx(world);
    let mobility = MobilityIndex::build(&context);
    c.bench_function("fig8_domain_breakdown", |b| {
        b.iter(|| DomainBreakdown::compute(black_box(&context)))
    });
    c.bench_function("s6_through_device", |b| {
        b.iter(|| ThroughDeviceReport::compute(black_box(&context), &mobility))
    });
}

fn extensions(c: &mut Criterion) {
    let world = medium_world();
    let context = ctx(world);
    c.bench_function("s41_device_mix", |b| {
        b.iter(|| DeviceMix::compute(black_box(&context)))
    });
    c.bench_function("s42_weekly_pattern", |b| {
        b.iter(|| WeeklyPattern::compute(black_box(&context)))
    });
    c.bench_function("qa_data_quality", |b| {
        b.iter(|| DataQualityReport::compute(black_box(&context)))
    });
}

fn takeaways_full(c: &mut Criterion) {
    let world = medium_world();
    let context = ctx(world);
    let mut group = c.benchmark_group("takeaways");
    group.sample_size(10);
    group.bench_function("full_pipeline", |b| {
        b.iter(|| Takeaways::compute(black_box(&context), &world.summaries))
    });
    group.finish();
}

criterion_group!(
    figures,
    fig2_adoption,
    fig3_activity,
    fig4_compare_mobility,
    fig567_apps,
    fig8_and_sec6,
    extensions,
    takeaways_full
);
criterion_main!(figures);
