//! Streaming-engine throughput: the batch path (resilient load + one
//! sequential fold over the whole store) vs the incremental runtime pulling
//! the same logs through event-time windows. The streaming side is
//! measured at two window widths so the per-window emission overhead is
//! visible, and once with `collect_aggregates` on — the configuration the
//! golden-equivalence test uses to reproduce batch results bit-identically.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use wearscope_appdb::AppCatalog;
use wearscope_bench::small_world;
use wearscope_core::merge::CoreAggregates;
use wearscope_core::StudyContext;
use wearscope_devicedb::DeviceDb;
use wearscope_geo::SectorDirectory;
use wearscope_ingest::{load_store_resilient, IngestOptions};
use wearscope_simtime::SimDuration;
use wearscope_stream::{
    PumpOptions, PumpOutcome, StreamConfig, StreamRuntime, WindowSpec, WorldSource,
};
use wearscope_trace::TraceStore;

fn stream_once(
    ctx: &StudyContext<'_>,
    dir: &std::path::Path,
    config: StreamConfig,
) -> wearscope_report::StreamSummary {
    let mut rt = StreamRuntime::new(ctx, config);
    let mut src = WorldSource::open(dir, false)
        .expect("open logs")
        .with_horizon(config.max_timestamp);
    loop {
        match rt.pump(&mut src, &PumpOptions::default()).expect("pump") {
            PumpOutcome::Finished => break,
            PumpOutcome::Pending => src.finish(),
            PumpOutcome::Stopped => unreachable!("no stop_after configured"),
        }
    }
    rt.finish();
    rt.into_results().0
}

fn batch_vs_stream(c: &mut Criterion) {
    let world = small_world();
    let records = (world.store.proxy().len() + world.store.mme().len()) as u64;
    let dir = std::env::temp_dir().join(format!("wearscope-bench-stream-{}", std::process::id()));
    world.save(&dir).expect("saving bench world");
    let opts = IngestOptions::for_world(&dir);

    // The streaming context: empty store, live device DB (records arrive
    // through the source, exactly as `wearscope stream` wires it).
    let empty = TraceStore::new();
    let db = DeviceDb::standard();
    let catalog = AppCatalog::standard();
    let sectors = SectorDirectory::new();
    let stream_ctx = StudyContext::new(&empty, &db, &sectors, &catalog, world.config.window);

    let mut group = c.benchmark_group("stream-throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(records));

    // Batch reference: load everything, then one sequential fold.
    group.bench_function("batch-load-and-fold", |b| {
        b.iter(|| {
            let (store, _) = load_store_resilient(black_box(&dir), 1, &opts).expect("batch load");
            let batch_ctx = StudyContext::new(&store, &db, &sectors, &catalog, world.config.window);
            CoreAggregates::sequential(&batch_ctx)
        })
    });

    for width_hours in [1u64, 24] {
        let spec = WindowSpec::tumbling(SimDuration::from_hours(width_hours)).expect("spec");
        let mut config = StreamConfig::new(spec, SimDuration::from_secs(300));
        config.max_timestamp = opts.max_timestamp;
        group.bench_with_input(
            BenchmarkId::new("stream-windowed", format!("{width_hours}h")),
            &config,
            |b, config| b.iter(|| stream_once(black_box(&stream_ctx), &dir, *config)),
        );
    }

    // With partial aggregates collected per window (what the equivalence
    // contract pays for the ability to merge back into batch results).
    let spec = WindowSpec::tumbling(SimDuration::from_hours(24)).expect("spec");
    let mut config = StreamConfig::new(spec, SimDuration::from_secs(300));
    config.max_timestamp = opts.max_timestamp;
    config.collect_aggregates = true;
    group.bench_function("stream-windowed/24h-collected", |b| {
        b.iter(|| stream_once(black_box(&stream_ctx), &dir, config))
    });

    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, batch_vs_stream);
criterion_main!(benches);
