//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. longest-suffix **trie vs linear scan** for SNI classification;
//! 2. **bucket grid vs brute force** nearest-sector lookup;
//! 3. **streaming fold vs materialize-then-scan** for per-user traffic;
//! 4. **merged time-sort vs per-user ordering** of generated events.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use wearscope_appdb::{AppCatalog, Classification, SniClassifier};
use wearscope_bench::{ctx, small_world};
use wearscope_core::compare;
use wearscope_geo::{GeoPoint, SectorGrid};
use wearscope_trace::UserId;

/// Ablation 1: the production trie against the naive per-signature suffix
/// scan it replaces.
fn classifier_trie_vs_linear(c: &mut Criterion) {
    let catalog = AppCatalog::standard();
    let trie = SniClassifier::build(&catalog);
    // The linear baseline: (suffix, classification) pairs, longest first.
    let mut signatures: Vec<(String, Classification)> = Vec::new();
    for (id, app) in catalog.iter() {
        for d in app.domains {
            signatures.push((d.to_string(), Classification::FirstParty(id)));
        }
    }
    for tp in wearscope_appdb::third_party_domains() {
        signatures.push((tp.domain.to_string(), Classification::ThirdParty(tp.class)));
    }
    signatures.sort_by_key(|(d, _)| std::cmp::Reverse(d.len()));
    let linear = |host: &str| -> Option<Classification> {
        let host = host.to_ascii_lowercase();
        signatures
            .iter()
            .find(|(sig, _)| {
                host == *sig
                    || (host.len() > sig.len()
                        && host.ends_with(sig.as_str())
                        && host.as_bytes()[host.len() - sig.len() - 1] == b'.')
            })
            .map(|(_, c)| *c)
    };

    let world = small_world();
    let hosts: Vec<&str> = world
        .store
        .proxy()
        .iter()
        .take(10_000)
        .map(|r| r.host.as_str())
        .collect();
    // Sanity: both classify identically on trace hosts.
    for h in hosts.iter().take(500) {
        assert_eq!(trie.classify(h), linear(h), "mismatch on {h}");
    }

    let mut group = c.benchmark_group("ablation_classifier");
    group.throughput(Throughput::Elements(hosts.len() as u64));
    group.bench_function("trie", |b| {
        b.iter(|| {
            hosts
                .iter()
                .filter(|h| trie.classify(black_box(h)).is_some())
                .count()
        })
    });
    group.bench_function("linear_scan", |b| {
        b.iter(|| {
            hosts
                .iter()
                .filter(|h| linear(black_box(h)).is_some())
                .count()
        })
    });
    group.finish();
}

/// Ablation 2: bucket-grid nearest sector vs brute force over the directory.
fn grid_vs_brute_force(c: &mut Criterion) {
    let world = small_world();
    let dir = &world.sectors;
    let grid = SectorGrid::build(dir);
    let queries: Vec<GeoPoint> = (0..2_000)
        .map(|i| {
            let t = i as f64 / 2_000.0;
            GeoPoint::new(38.0 + 5.0 * t, -6.0 + 7.0 * (1.0 - t))
        })
        .collect();
    let mut group = c.benchmark_group("ablation_nearest_sector");
    group.throughput(Throughput::Elements(queries.len() as u64));
    group.bench_function("bucket_grid", |b| {
        b.iter(|| {
            queries
                .iter()
                .map(|q| grid.nearest(black_box(*q)).unwrap().raw())
                .sum::<u32>()
        })
    });
    group.bench_function("brute_force", |b| {
        b.iter(|| {
            queries
                .iter()
                .map(|q| {
                    dir.iter()
                        .min_by(|a, b| {
                            q.distance_km(a.location)
                                .partial_cmp(&q.distance_km(b.location))
                                .unwrap()
                        })
                        .unwrap()
                        .id
                        .raw()
                })
                .sum::<u32>()
        })
    });
    group.finish();
}

/// Ablation 3: the single-pass per-user traffic fold vs re-scanning the log
/// once per user (the naive "query per user" shape).
fn streaming_vs_rescan(c: &mut Criterion) {
    let world = small_world();
    let context = ctx(world);
    let mut group = c.benchmark_group("ablation_user_traffic");
    group.sample_size(20);
    group.bench_function("single_pass_fold", |b| {
        b.iter(|| compare::user_traffic(black_box(&context)))
    });
    group.bench_function("rescan_per_user", |b| {
        // Bounded to 100 users: the full quadratic rescan would dominate the
        // bench wall-clock, which is exactly the point being made.
        let users: Vec<UserId> = context.all_users().iter().copied().take(100).collect();
        b.iter(|| {
            let mut total = 0u64;
            for u in &users {
                total += world
                    .store
                    .proxy()
                    .iter()
                    .filter(|r| r.user == *u)
                    .map(|r| r.bytes_total())
                    .sum::<u64>();
            }
            total
        })
    });
    group.finish();
}

/// Ablation 4: cost of globally time-sorting a day's events vs leaving them
/// in per-user order (what the merged event stream buys).
fn event_ordering(c: &mut Criterion) {
    let world = small_world();
    let mut events: Vec<(u64, u64)> = world
        .store
        .proxy()
        .iter()
        .map(|r| (r.user.raw(), r.timestamp.as_secs()))
        .collect();
    // Shuffle into per-user order first.
    events.sort_unstable();
    let mut group = c.benchmark_group("ablation_event_ordering");
    group.throughput(Throughput::Elements(events.len() as u64));
    group.bench_function("sort_by_time", |b| {
        b.iter(|| {
            let mut v = events.clone();
            v.sort_unstable_by_key(|&(_, t)| t);
            v.len()
        })
    });
    group.bench_function("clone_only_baseline", |b| {
        b.iter(|| {
            let v = events.clone();
            v.len()
        })
    });
    group.finish();
}

/// Ablation 5: sensitivity of the paper's 1-minute sessionization gap —
/// runtime is flat in the gap, but the resulting session count (printed via
/// criterion labels in the bench names) is what the parameter controls.
fn session_gap_sensitivity(c: &mut Criterion) {
    use wearscope_core::sessions::{attribute_transactions, sessionize_with_gap};
    let world = small_world();
    let context = ctx(world);
    let attributed = attribute_transactions(&context);
    let mut group = c.benchmark_group("ablation_session_gap");
    for gap in [15u64, 60, 300] {
        group.bench_function(format!("gap_{gap}s"), |b| {
            b.iter(|| sessionize_with_gap(black_box(&attributed), gap).len())
        });
    }
    group.finish();
}

criterion_group!(
    ablations,
    classifier_trie_vs_linear,
    grid_vs_brute_force,
    streaming_vs_rescan,
    event_ordering,
    session_gap_sensitivity
);
criterion_main!(ablations);
