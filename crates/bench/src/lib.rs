//! Shared fixtures for the criterion benches: worlds are generated once per
//! scale and cached for the whole bench process.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::sync::OnceLock;

use wearscope_core::StudyContext;
use wearscope_simtime::{Calendar, ObservationWindow};
use wearscope_synthpop::{generate, GeneratedWorld, ScenarioConfig};

/// A small world: ~500 subscribers, 6 summary weeks (2 detailed).
pub fn small_world() -> &'static GeneratedWorld {
    static WORLD: OnceLock<GeneratedWorld> = OnceLock::new();
    WORLD.get_or_init(|| {
        let mut config = ScenarioConfig::compact(1001);
        config.wearable_users = 200;
        config.comparison_users = 250;
        config.through_device_users = 60;
        generate(&config)
    })
}

/// A medium world: ~1500 subscribers, 10 summary weeks (4 detailed).
pub fn medium_world() -> &'static GeneratedWorld {
    static WORLD: OnceLock<GeneratedWorld> = OnceLock::new();
    WORLD.get_or_init(|| {
        let mut config = ScenarioConfig::compact(1002);
        config.window = ObservationWindow::new(70, 28, Calendar::PAPER);
        config.wearable_users = 500;
        config.comparison_users = 800;
        config.through_device_users = 200;
        config.workers = 4;
        generate(&config)
    })
}

/// Builds a study context over a world.
pub fn ctx(world: &GeneratedWorld) -> StudyContext<'_> {
    StudyContext::new(
        &world.store,
        &world.db,
        &world.sectors,
        &world.apps,
        world.config.window,
    )
}
